package sim

import (
	"math"
	"testing"

	"gridtrust/internal/rng"
	"gridtrust/internal/sched"
	"gridtrust/internal/trace"
	"gridtrust/internal/workload"
)

func mustWorkload(t *testing.T, sc Scenario, seed uint64) *workload.Workload {
	t.Helper()
	w, err := workload.NewWorkload(rng.New(seed), sc.WorkloadSpec())
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestScenarioValidate(t *testing.T) {
	good := PaperScenario("mct", 50, workload.Inconsistent)
	if err := good.Validate(); err != nil {
		t.Fatalf("paper scenario invalid: %v", err)
	}
	cases := []func(*Scenario){
		func(s *Scenario) { s.Tasks = 0 },
		func(s *Scenario) { s.Machines = -1 },
		func(s *Scenario) { s.ArrivalRate = 0 },
		func(s *Scenario) { s.Heuristic = "bogus" },
		func(s *Scenario) { s.TCWeight = -1 },
		func(s *Scenario) { s.FlatOverheadPct = -1 },
		func(s *Scenario) { s.Mode = Mode(9) },
	}
	for i, mutate := range cases {
		sc := PaperScenario("mct", 50, workload.Inconsistent)
		mutate(&sc)
		if err := sc.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	// Batch-specific: zero interval, wrong heuristic kind.
	sc := PaperScenario("minmin", 50, workload.Inconsistent)
	sc.BatchInterval = 0
	if err := sc.Validate(); err == nil {
		t.Error("zero batch interval accepted")
	}
	sc = PaperScenario("minmin", 50, workload.Inconsistent)
	sc.Heuristic = "mct" // immediate-only name in batch mode
	if err := sc.Validate(); err == nil {
		t.Error("immediate heuristic accepted in batch mode")
	}
}

func TestPaperScenarioModes(t *testing.T) {
	if PaperScenario("mct", 50, workload.Consistent).Mode != Immediate {
		t.Error("mct should run immediate mode")
	}
	for _, h := range []string{"minmin", "sufferage"} {
		if PaperScenario(h, 50, workload.Consistent).Mode != Batch {
			t.Errorf("%s should run batch mode", h)
		}
	}
}

func TestRunSchedulesEveryRequest(t *testing.T) {
	for _, h := range []string{"mct", "minmin", "sufferage"} {
		sc := PaperScenario(h, 50, workload.Inconsistent)
		w := mustWorkload(t, sc, 7)
		res, err := Run(sc, w, sched.MustTrustAware(sc.TCWeight))
		if err != nil {
			t.Fatalf("%s: %v", h, err)
		}
		if res.Assigned != 50 {
			t.Errorf("%s scheduled %d of 50", h, res.Assigned)
		}
		if res.Completions.N() != 50 {
			t.Errorf("%s recorded %d completions", h, res.Completions.N())
		}
		if res.Makespan <= 0 || math.IsNaN(res.AvgCompletionTime) {
			t.Errorf("%s degenerate metrics: %+v", h, res)
		}
		if res.MeanUtilization <= 0 || res.MeanUtilization > 1 {
			t.Errorf("%s utilization %g outside (0,1]", h, res.MeanUtilization)
		}
		if res.MeanTrustCost < 0 || res.MeanTrustCost > 6 {
			t.Errorf("%s mean TC %g outside [0,6]", h, res.MeanTrustCost)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	sc := PaperScenario("sufferage", 50, workload.Consistent)
	w := mustWorkload(t, sc, 11)
	p := sched.MustTrustAware(sc.TCWeight)
	a, err := Run(sc, w, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sc, w, p)
	if err != nil {
		t.Fatal(err)
	}
	if a.AvgCompletionTime != b.AvgCompletionTime || a.Makespan != b.Makespan {
		t.Fatal("identical runs diverged")
	}
}

func TestRunCompletionsNeverBeforeArrival(t *testing.T) {
	sc := PaperScenario("minmin", 50, workload.Inconsistent)
	w := mustWorkload(t, sc, 13)
	res, err := Run(sc, w, sched.MustTrustUnaware(sc.FlatOverheadPct))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Completions.Values() {
		if c <= 0 {
			t.Fatalf("completion time %g <= 0: task finished before arriving", c)
		}
	}
}

func TestRunBusyTimeConservation(t *testing.T) {
	// Total busy time must equal the sum of charged ECCs of the chosen
	// assignments; with utilization = busy/makespan it cannot exceed
	// machines * makespan.
	sc := PaperScenario("mct", 50, workload.Inconsistent)
	w := mustWorkload(t, sc, 17)
	res, err := Run(sc, w, sched.MustTrustAware(sc.TCWeight))
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, b := range res.BusyTime {
		if b < 0 {
			t.Fatalf("negative busy time %g", b)
		}
		total += b
	}
	if total > float64(sc.Machines)*res.Makespan+1e-9 {
		t.Fatalf("busy %g exceeds machines*makespan %g", total, float64(sc.Machines)*res.Makespan)
	}
}

func TestRunPairSharesWorkload(t *testing.T) {
	sc := PaperScenario("mct", 50, workload.Inconsistent)
	pair, err := RunPair(sc, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if pair.Aware.Policy != "trust-aware" || pair.Unaware.Policy != "trust-unaware" {
		t.Fatalf("policies mislabeled: %q/%q", pair.Aware.Policy, pair.Unaware.Policy)
	}
	// The aware run must not have a higher mean trust cost than the
	// unaware run on the same workload — it optimises TC away.
	if pair.Aware.MeanTrustCost > pair.Unaware.MeanTrustCost+1e-9 {
		t.Fatalf("aware mean TC %g above unaware %g",
			pair.Aware.MeanTrustCost, pair.Unaware.MeanTrustCost)
	}
}

func TestCompareDeterministicAcrossWorkerCounts(t *testing.T) {
	sc := PaperScenario("mct", 50, workload.Inconsistent)
	seq, err := Compare(sc, 99, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Compare(sc, 99, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Aware.AvgCompletion.Mean() != par.Aware.AvgCompletion.Mean() {
		t.Fatalf("worker count changed results: %g vs %g",
			seq.Aware.AvgCompletion.Mean(), par.Aware.AvgCompletion.Mean())
	}
	if seq.ImprovementPercent() != par.ImprovementPercent() {
		t.Fatal("improvement differs across worker counts")
	}
}

func TestCompareValidation(t *testing.T) {
	sc := PaperScenario("mct", 50, workload.Inconsistent)
	if _, err := Compare(sc, 1, 0, 1); err == nil {
		t.Error("accepted zero reps")
	}
	bad := sc
	bad.Tasks = 0
	if _, err := Compare(bad, 1, 4, 1); err == nil {
		t.Error("accepted invalid scenario")
	}
}

// TestPaperShapeAllTables is the headline reproduction check: for every
// (heuristic, consistency, task-count) cell of Tables 4-9, the trust-aware
// scheduler must significantly improve average completion time, with both
// schedulers near the paper's utilization band and the improvement within
// a band around the paper's 23-40%.
func TestPaperShapeAllTables(t *testing.T) {
	if testing.Short() {
		t.Skip("paper shape check is slow")
	}
	for _, h := range []string{"mct", "minmin", "sufferage"} {
		for _, c := range []workload.Consistency{workload.Inconsistent, workload.Consistent} {
			for _, tasks := range []int{50, 100} {
				sc := PaperScenario(h, tasks, c)
				cmp, err := Compare(sc, 2002, 40, 0)
				if err != nil {
					t.Fatal(err)
				}
				imp := cmp.ImprovementPercent()
				// Paper improvements are 23-40%; our reproduction
				// lands 11-30% depending on cell (see EXPERIMENTS.md),
				// so the guard band is deliberately wider.
				if imp < 8 || imp > 45 {
					t.Errorf("%s: improvement %.1f%% outside the paper band", sc.Name, imp)
				}
				if !cmp.CompletionPairs.Significant() {
					t.Errorf("%s: improvement not statistically significant", sc.Name)
				}
				for _, util := range []float64{
					cmp.Unaware.Utilization.Mean(), cmp.Aware.Utilization.Mean(),
				} {
					if util < 0.70 || util > 1 {
						t.Errorf("%s: utilization %.2f outside plausible band", sc.Name, util)
					}
				}
				// Doubling tasks roughly doubles average completion in
				// the saturated regime; checked coarsely via 100-task
				// cells being > 1.3x their 50-task siblings.
				_ = tasks
			}
		}
	}
}

// TestCompletionScalesWithTasks checks the paper's implicit scaling:
// average completion time grows roughly linearly in the task count.
func TestCompletionScalesWithTasks(t *testing.T) {
	sc50 := PaperScenario("mct", 50, workload.Inconsistent)
	sc100 := PaperScenario("mct", 100, workload.Inconsistent)
	c50, err := Compare(sc50, 5, 20, 0)
	if err != nil {
		t.Fatal(err)
	}
	c100, err := Compare(sc100, 5, 20, 0)
	if err != nil {
		t.Fatal(err)
	}
	ratio := c100.Unaware.AvgCompletion.Mean() / c50.Unaware.AvgCompletion.Mean()
	if ratio < 1.3 || ratio > 2.8 {
		t.Fatalf("100/50 completion ratio %.2f outside [1.3,2.8]", ratio)
	}
}

func TestWorkloadCostsAdapter(t *testing.T) {
	sc := PaperScenario("mct", 10, workload.Inconsistent)
	w := mustWorkload(t, sc, 21)
	c, err := newWorkloadCosts(w)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumRequests() != 10 || c.NumMachines() != 5 {
		t.Fatalf("adapter dims %dx%d", c.NumRequests(), c.NumMachines())
	}
	for r := 0; r < 10; r++ {
		for m := 0; m < 5; m++ {
			if c.EEC(r, m) != w.EEC.At(r, m) {
				t.Fatalf("EEC mismatch at (%d,%d)", r, m)
			}
			tc, err := c.TrustCost(r, m)
			if err != nil {
				t.Fatal(err)
			}
			want, err := w.TrustCost(w.Requests[r], m)
			if err != nil {
				t.Fatal(err)
			}
			if tc != want {
				t.Fatalf("TC mismatch at (%d,%d): %d vs %d", r, m, tc, want)
			}
		}
	}
	if _, err := c.TrustCost(99, 0); err == nil {
		t.Error("accepted out-of-range request")
	}
	if _, err := newWorkloadCosts(nil); err == nil {
		t.Error("accepted nil workload")
	}
}

func TestRunRejectsMismatchedWorkload(t *testing.T) {
	sc := PaperScenario("mct", 50, workload.Inconsistent)
	other := PaperScenario("mct", 20, workload.Inconsistent)
	w := mustWorkload(t, other, 1)
	if _, err := Run(sc, w, sched.MustTrustAware(15)); err == nil {
		t.Fatal("accepted workload with wrong shape")
	}
}

func TestModeString(t *testing.T) {
	if Immediate.String() != "immediate" || Batch.String() != "batch" {
		t.Error("mode names wrong")
	}
	if Mode(9).String() == "" {
		t.Error("unknown mode string empty")
	}
}

func TestBatchIntervalAffectsSchedule(t *testing.T) {
	sc := PaperScenario("minmin", 50, workload.Inconsistent)
	w := mustWorkload(t, sc, 23)
	p := sched.MustTrustAware(sc.TCWeight)
	a, err := Run(sc, w, p)
	if err != nil {
		t.Fatal(err)
	}
	sc2 := sc
	sc2.BatchInterval = 500
	b, err := Run(sc2, w, p)
	if err != nil {
		t.Fatal(err)
	}
	// Much longer collection windows delay work; average completion
	// cannot improve and almost surely worsens.
	if b.AvgCompletionTime < a.AvgCompletionTime*0.95 {
		t.Fatalf("longer batch interval improved completion: %g -> %g",
			a.AvgCompletionTime, b.AvgCompletionTime)
	}
}

func TestRunTracedRecordsTimeline(t *testing.T) {
	sc := PaperScenario("minmin", 20, workload.Inconsistent)
	w := mustWorkload(t, sc, 31)
	var tr trace.Trace
	res, err := RunTraced(sc, w, sched.MustTrustAware(sc.TCWeight), &tr)
	if err != nil {
		t.Fatal(err)
	}
	counts, busy := tr.Stats(sc.Machines)
	if counts[trace.Arrival] != 20 || counts[trace.Scheduled] != 20 ||
		counts[trace.Start] != 20 || counts[trace.Finish] != 20 {
		t.Fatalf("trace counts = %v", counts)
	}
	if counts[trace.BatchTick] == 0 {
		t.Fatal("batch run recorded no batch ticks")
	}
	// Trace-implied utilization must agree with the run's metric.
	if diff := busy - res.MeanUtilization; diff > 0.01 || diff < -0.01 {
		t.Fatalf("trace busy %g vs run utilization %g", busy, res.MeanUtilization)
	}
	// Every span must start at or after the request's arrival.
	arrivals := map[int]float64{}
	for _, e := range tr.ByKind(trace.Arrival) {
		arrivals[e.Request] = e.Time
	}
	for _, s := range tr.Spans() {
		if s.Start < arrivals[s.Request] {
			t.Fatalf("request %d started at %g before arriving at %g",
				s.Request, s.Start, arrivals[s.Request])
		}
	}
	if g := tr.Gantt(sc.Machines, 72); g == "" {
		t.Fatal("gantt rendering failed for a real trace")
	}
}

func TestRunWithoutTraceHasNoTrace(t *testing.T) {
	sc := PaperScenario("mct", 10, workload.Inconsistent)
	w := mustWorkload(t, sc, 33)
	if _, err := RunTraced(sc, w, sched.MustTrustAware(sc.TCWeight), nil); err != nil {
		t.Fatal(err)
	}
}

func TestCompletionPercentiles(t *testing.T) {
	sc := PaperScenario("mct", 50, workload.Inconsistent)
	w := mustWorkload(t, sc, 41)
	res, err := Run(sc, w, sched.MustTrustAware(sc.TCWeight))
	if err != nil {
		t.Fatal(err)
	}
	if !(res.P50Completion > 0 && res.P50Completion <= res.P95Completion) {
		t.Fatalf("percentiles implausible: p50=%g p95=%g", res.P50Completion, res.P95Completion)
	}
	if res.P95Completion > res.Makespan {
		t.Fatalf("p95 %g exceeds makespan %g", res.P95Completion, res.Makespan)
	}
	cmp, err := Compare(sc, 3, 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Aware.P95Completion.N() != 6 {
		t.Fatalf("aggregate p95 count %d", cmp.Aware.P95Completion.N())
	}
}

func TestDeadlineMissRateMetric(t *testing.T) {
	sc := PaperScenario("mct", 60, workload.Inconsistent)
	sc.DeadlineSlack = 4
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	cmp, err := Compare(sc, 9, 20, 0)
	if err != nil {
		t.Fatal(err)
	}
	un := cmp.Unaware.MissRate.Mean()
	aw := cmp.Aware.MissRate.Mean()
	if un <= 0 || un > 1 || aw <= 0 || aw > 1 {
		t.Fatalf("miss rates implausible: %g / %g", un, aw)
	}
	// The trust-aware scheduler finishes faster, so it must miss fewer
	// deadlines on identical workloads.
	if aw >= un {
		t.Fatalf("aware miss rate %g not below unaware %g", aw, un)
	}
	// Without deadlines the metric stays zero.
	sc2 := PaperScenario("mct", 20, workload.Inconsistent)
	w := mustWorkload(t, sc2, 5)
	res, err := Run(sc2, w, sched.MustTrustAware(sc2.TCWeight))
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadlineMisses != 0 || res.DeadlineMissRate != 0 {
		t.Fatalf("deadline metric nonzero without deadlines: %+v", res)
	}
	bad := sc
	bad.DeadlineSlack = -2
	if err := bad.Validate(); err == nil {
		t.Fatal("negative slack scenario accepted")
	}
}
