package fleet

import (
	"fmt"
	"net"
	"sync"

	"gridtrust/internal/core"
	"gridtrust/internal/grid"
	"gridtrust/internal/rmswire"
	"gridtrust/internal/trustwire"
)

// Fleet wires one gridtrustd shard into a multi-daemon ring: it owns
// the consistent-hash ring, the shard-aware router installed into the
// rmswire server, the trustwire server that publishes the local trust
// table to peers, and the gossip goroutines that pull every peer's
// table into the claims overlay.
type Fleet struct {
	cfg    Config
	self   int
	ring   *Ring
	trms   *core.TRMS
	router *router
	claims *Claims // nil on a single-shard ring
	tw     *trustwire.Server
	twAddr net.Addr

	stop   chan struct{}
	wg     sync.WaitGroup
	closed bool
	mu     sync.Mutex
}

// Start joins srv to the fleet described by cfg as the shard named
// self.  Call it after the journal is attached (the placement-ID
// namespace must be raised above whatever replay restored) and before
// ListenAndServe (the router and fleet status hooks are read without
// synchronization once traffic starts).
//
// A single-shard fleet starts no gossip and installs no claim fusion:
// its daemon is byte-identical — WAL and all — to one run without
// -fleet, because shard 0's ID namespace base is 0 and the router's
// ring maps every key to self.
func Start(cfg Config, self string, srv *rmswire.Server, trms *core.TRMS) (*Fleet, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	idx := cfg.Index(self)
	if idx < 0 {
		return nil, fmt.Errorf("fleet: shard %q not in config (members: %v)", self, cfg.Names())
	}
	ring, err := NewRing(cfg.Names(), cfg.VNodes)
	if err != nil {
		return nil, err
	}

	f := &Fleet{
		cfg:  cfg,
		self: idx,
		ring: ring,
		trms: trms,
		stop: make(chan struct{}),
	}

	// Namespace this shard's placement IDs so reports route statelessly
	// by ID high bits.  Shard 0 keeps base 0: single-shard byte-identity.
	srv.SetNextIDBase(uint64(idx) << rmswire.ShardIDShift)

	topo := trms.Topology()
	f.router = newRouter(cfg, idx, ring, topo, srv.Metrics(), f.stop)
	srv.Router = f.router
	srv.FleetStatus = f.Status

	if len(cfg.Shards) > 1 {
		// Publish the local authoritative table to peers...
		tw, err := trustwire.NewServer(trms.Table(),
			len(topo.ClientDomains()), len(topo.ResourceDomains()), grid.NumBuiltinActivities)
		if err != nil {
			return nil, fmt.Errorf("fleet: trust server: %w", err)
		}
		ln, err := net.Listen("tcp", cfg.Shards[idx].TrustAddr)
		if err != nil {
			return nil, fmt.Errorf("fleet: trust listen %s: %w", cfg.Shards[idx].TrustAddr, err)
		}
		addr := ln.Addr()
		if cfg.WrapListener != nil {
			ln = cfg.WrapListener(ln)
		}
		go func() { _ = tw.Serve(ln) }()
		f.tw, f.twAddr = tw, addr

		// ...and pull every peer's table into the claims overlay.  The
		// fuser is installed before any client traffic, so the
		// unsynchronized read in Submit is safe (happens-before via the
		// listener goroutine start).
		peers := make([]ShardConfig, 0, len(cfg.Shards)-1)
		for i, s := range cfg.Shards {
			if i != idx {
				peers = append(peers, s)
			}
		}
		f.claims = newClaims(peers, cfg.StalenessBound(), cfg.GossipTimeout(), srv.Metrics())
		trms.SetOTLFuser(f.claims)
		for _, p := range f.claims.peers {
			f.wg.Add(1)
			go func(p *peerState) {
				defer f.wg.Done()
				f.claims.run(p, cfg.GossipInterval(), f.stop)
			}(p)
		}
	}
	return f, nil
}

// Status builds the shard's fleet view, served under the "fleet" wire op.
func (f *Fleet) Status() *rmswire.FleetInfo {
	info := &rmswire.FleetInfo{
		Shard:            f.cfg.Shards[f.self].Name,
		ShardIndex:       f.self,
		Members:          f.ring.Members(),
		VNodes:           f.ring.VNodes(),
		CDs:              len(f.trms.Topology().ClientDomains()),
		TableVersion:     f.trms.Table().Version(),
		TableEntries:     f.trms.Table().Len(),
		GossipIntervalMS: f.cfg.GossipInterval().Milliseconds(),
		StalenessBoundMS: f.cfg.StalenessBound().Milliseconds(),
	}
	if f.claims != nil {
		info.Peers = f.claims.peerInfos()
		// Annotate each peer with this shard's forward-path breaker.
		for i := range info.Peers {
			if br := f.router.breakerAt(f.cfg.Index(info.Peers[i].Name)); br != nil {
				state, opens, closes := br.snapshot()
				info.Peers[i].Breaker = state
				info.Peers[i].BreakerOpens = opens
				info.Peers[i].BreakerCloses = closes
			}
		}
	}
	return info
}

// Ring exposes the fleet's hash ring (ownership queries for tooling).
func (f *Fleet) Ring() *Ring { return f.ring }

// TrustAddr returns the bound trust-gossip listen address, or "" on a
// single-shard fleet.
func (f *Fleet) TrustAddr() string {
	if f.twAddr == nil {
		return ""
	}
	return f.twAddr.String()
}

// Close stops gossip, the trust server, and every cached peer
// connection.  Idempotent; call after the rmswire server stops
// accepting (the router must not be routing concurrently with close).
func (f *Fleet) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	f.mu.Unlock()
	close(f.stop)
	f.wg.Wait()
	if f.tw != nil {
		f.tw.Close()
	}
	f.router.close()
}
