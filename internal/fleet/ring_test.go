package fleet

import (
	"fmt"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("cd:%d", i)
	}
	return out
}

func TestRingSingleMemberOwnsEverything(t *testing.T) {
	r, err := NewRing([]string{"solo"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys(1000) {
		if got := r.Owner(k); got != "solo" {
			t.Fatalf("Owner(%q) = %q, want solo", k, got)
		}
	}
}

func TestRingDeterministicAndOrderIndependent(t *testing.T) {
	a, err := NewRing([]string{"s0", "s1", "s2"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"s2", "s0", "s1"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys(5000) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("ownership of %q depends on member order: %q vs %q",
				k, a.Owner(k), b.Owner(k))
		}
	}
}

// TestRingBalance is the balance property: with enough virtual nodes,
// every member owns a share of a large keyspace within a loose band of
// fair.  The band is deliberately wide (half to 1.6x fair) — consistent
// hashing trades perfect balance for minimal movement.
func TestRingBalance(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8} {
		members := make([]string, n)
		for i := range members {
			members[i] = fmt.Sprintf("shard-%d", i)
		}
		r, err := NewRing(members, 0)
		if err != nil {
			t.Fatal(err)
		}
		const total = 20000
		counts := make(map[string]int)
		for _, k := range keys(total) {
			counts[r.Owner(k)]++
		}
		fair := float64(total) / float64(n)
		for _, m := range members {
			share := float64(counts[m])
			if share < 0.5*fair || share > 1.6*fair {
				t.Errorf("%d members: %s owns %d keys, fair %.0f (outside [0.5, 1.6]x)",
					n, m, counts[m], fair)
			}
		}
	}
}

// TestRingJoinMovesOnlyToNewMember is the minimal-movement property for
// joins: adding a member may move a key only *to* the new member; no
// key migrates between surviving members.
func TestRingJoinMovesOnlyToNewMember(t *testing.T) {
	before, err := NewRing([]string{"s0", "s1", "s2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	after, err := NewRing([]string{"s0", "s1", "s2", "s3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	ks := keys(20000)
	for _, k := range ks {
		ob, oa := before.Owner(k), after.Owner(k)
		if ob != oa {
			moved++
			if oa != "s3" {
				t.Fatalf("join moved %q from %q to surviving member %q", k, ob, oa)
			}
		}
	}
	// The new member must take roughly its fair share (1/4), not nothing
	// and not everything.
	if moved == 0 || moved > len(ks)/2 {
		t.Fatalf("join moved %d of %d keys; want a fair fraction", moved, len(ks))
	}
}

// TestRingLeaveMovesOnlyDepartedKeys is minimal movement for leaves:
// removing a member moves only the keys it owned; every key owned by a
// survivor stays put.
func TestRingLeaveMovesOnlyDepartedKeys(t *testing.T) {
	before, err := NewRing([]string{"s0", "s1", "s2", "s3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	after, err := NewRing([]string{"s0", "s1", "s3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys(20000) {
		ob, oa := before.Owner(k), after.Owner(k)
		if ob != "s2" && ob != oa {
			t.Fatalf("leave moved %q owned by survivor %q to %q", k, ob, oa)
		}
		if ob == "s2" && oa == "s2" {
			t.Fatalf("departed member still owns %q", k)
		}
	}
}

func TestRingRejectsBadMembers(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty ring accepted")
	}
	if _, err := NewRing([]string{"a", "a"}, 0); err == nil {
		t.Fatal("duplicate member accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Fatal("empty member name accepted")
	}
}
