package fleet

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"time"
)

// Defaults for the gossip cadence.  The staleness bound is deliberately
// an order of magnitude above the interval: a peer has to miss many
// consecutive gossip rounds before its claims stop influencing local
// scheduling decisions.
const (
	DefaultGossipInterval  = 100 * time.Millisecond
	DefaultStalenessBound  = 3 * time.Second
	DefaultForwardAttempts = 4
)

// Defaults for the failure-handling knobs.  The gossip timeout bounds
// one poll round trip against a black-holed peer (dial + sync); the
// forward timeouts bound the router's peer connections; the breaker
// opens after the threshold of consecutive forward failures and probes
// again after the cooldown.
const (
	DefaultGossipTimeout      = 1 * time.Second
	DefaultForwardDialTimeout = 1 * time.Second
	DefaultForwardOpTimeout   = 5 * time.Second
	DefaultBreakerThreshold   = 5
	DefaultBreakerCooldown    = 1 * time.Second
)

// ShardConfig names one fleet member and its two listen addresses: Addr
// serves rmswire (clients and peer forwarding), TrustAddr serves the
// trustwire replica protocol (peer gossip).
type ShardConfig struct {
	Name      string `json:"name"`
	Addr      string `json:"addr"`
	TrustAddr string `json:"trust_addr"`
}

// Config is the static fleet description every shard, gridctl and
// gridload load from the same file (configs/fleet.json).  The member
// list is the ring: changing it is a topology change and requires a
// rolling restart.
type Config struct {
	// Shards lists the fleet members.  Order fixes each shard's index,
	// which namespaces its placement ids (id >> rmswire.ShardIDShift),
	// so reordering a live fleet's config is a breaking change; adding
	// or removing members at the end is not.
	Shards []ShardConfig `json:"shards"`

	// VNodes is the virtual-node count per shard (0 = DefaultVNodes).
	VNodes int `json:"vnodes,omitempty"`

	// GossipIntervalMS is the per-peer trust gossip poll interval.
	GossipIntervalMS int64 `json:"gossip_interval_ms,omitempty"`

	// StalenessBoundMS bounds how old a peer's last successful gossip
	// sync may be before its claims are ignored by the scheduler.
	StalenessBoundMS int64 `json:"staleness_bound_ms,omitempty"`

	// ForwardAttempts bounds transport-level retries when forwarding a
	// mis-routed request to its owning shard (0 = DefaultForwardAttempts).
	ForwardAttempts int `json:"forward_attempts,omitempty"`

	// GossipTimeoutMS bounds one gossip round trip (dial + sync) so a
	// black-holed peer costs one deadline, not a wedged goroutine.
	GossipTimeoutMS int64 `json:"gossip_timeout_ms,omitempty"`

	// ForwardDialTimeoutMS / ForwardOpTimeoutMS bound the router's peer
	// connections: connecting, and one forwarded round trip.
	ForwardDialTimeoutMS int64 `json:"forward_dial_timeout_ms,omitempty"`
	ForwardOpTimeoutMS   int64 `json:"forward_op_timeout_ms,omitempty"`

	// BreakerThreshold is the consecutive forward failures that open a
	// peer's circuit breaker; BreakerCooldownMS is how long it stays
	// open before a half-open probe (0 selects the defaults).
	BreakerThreshold  int   `json:"breaker_threshold,omitempty"`
	BreakerCooldownMS int64 `json:"breaker_cooldown_ms,omitempty"`

	// WrapListener, when non-nil, interposes on the fleet's trust-gossip
	// listener before serving starts (fault injection, test harnesses).
	// Never set from JSON config.
	WrapListener func(net.Listener) net.Listener `json:"-"`
}

// GossipInterval resolves the poll interval.
func (c Config) GossipInterval() time.Duration {
	if c.GossipIntervalMS <= 0 {
		return DefaultGossipInterval
	}
	return time.Duration(c.GossipIntervalMS) * time.Millisecond
}

// StalenessBound resolves the claim staleness bound.
func (c Config) StalenessBound() time.Duration {
	if c.StalenessBoundMS <= 0 {
		return DefaultStalenessBound
	}
	return time.Duration(c.StalenessBoundMS) * time.Millisecond
}

// MaxForwardAttempts resolves the forward retry budget.
func (c Config) MaxForwardAttempts() int {
	if c.ForwardAttempts <= 0 {
		return DefaultForwardAttempts
	}
	return c.ForwardAttempts
}

// GossipTimeout resolves the per-round gossip deadline.
func (c Config) GossipTimeout() time.Duration {
	if c.GossipTimeoutMS <= 0 {
		return DefaultGossipTimeout
	}
	return time.Duration(c.GossipTimeoutMS) * time.Millisecond
}

// ForwardDialTimeout resolves the peer-connection dial deadline.
func (c Config) ForwardDialTimeout() time.Duration {
	if c.ForwardDialTimeoutMS <= 0 {
		return DefaultForwardDialTimeout
	}
	return time.Duration(c.ForwardDialTimeoutMS) * time.Millisecond
}

// ForwardOpTimeout resolves the forwarded round-trip deadline.
func (c Config) ForwardOpTimeout() time.Duration {
	if c.ForwardOpTimeoutMS <= 0 {
		return DefaultForwardOpTimeout
	}
	return time.Duration(c.ForwardOpTimeoutMS) * time.Millisecond
}

// BreakerTripThreshold resolves the consecutive-failure trip count.
func (c Config) BreakerTripThreshold() int {
	if c.BreakerThreshold <= 0 {
		return DefaultBreakerThreshold
	}
	return c.BreakerThreshold
}

// BreakerCooldown resolves how long an open breaker waits before a
// half-open probe.
func (c Config) BreakerCooldown() time.Duration {
	if c.BreakerCooldownMS <= 0 {
		return DefaultBreakerCooldown
	}
	return time.Duration(c.BreakerCooldownMS) * time.Millisecond
}

// Names returns the shard names in config order (the ring members).
func (c Config) Names() []string {
	out := make([]string, len(c.Shards))
	for i, s := range c.Shards {
		out[i] = s.Name
	}
	return out
}

// Index returns the config-order index of the named shard, or -1.
func (c Config) Index(name string) int {
	for i, s := range c.Shards {
		if s.Name == name {
			return i
		}
	}
	return -1
}

// Validate checks the member list for structural problems.
func (c Config) Validate() error {
	if len(c.Shards) == 0 {
		return fmt.Errorf("fleet: config has no shards")
	}
	names := make(map[string]struct{}, len(c.Shards))
	addrs := make(map[string]struct{}, 2*len(c.Shards))
	for i, s := range c.Shards {
		if s.Name == "" {
			return fmt.Errorf("fleet: shard %d has no name", i)
		}
		if s.Addr == "" {
			return fmt.Errorf("fleet: shard %q has no addr", s.Name)
		}
		if _, dup := names[s.Name]; dup {
			return fmt.Errorf("fleet: duplicate shard name %q", s.Name)
		}
		names[s.Name] = struct{}{}
		for _, a := range []string{s.Addr, s.TrustAddr} {
			if a == "" {
				continue
			}
			if _, dup := addrs[a]; dup {
				return fmt.Errorf("fleet: address %s used twice", a)
			}
			addrs[a] = struct{}{}
		}
		// Gossip needs a trust address on every member of a multi-shard
		// fleet; a single-shard "fleet" has no peers to gossip with.
		if len(c.Shards) > 1 && s.TrustAddr == "" {
			return fmt.Errorf("fleet: shard %q has no trust_addr (required with peers)", s.Name)
		}
	}
	return nil
}

// LoadConfig reads and validates a fleet config file.
func LoadConfig(path string) (Config, error) {
	var c Config
	data, err := os.ReadFile(path)
	if err != nil {
		return c, fmt.Errorf("fleet: %w", err)
	}
	if err := json.Unmarshal(data, &c); err != nil {
		return c, fmt.Errorf("fleet: parse %s: %w", path, err)
	}
	if err := c.Validate(); err != nil {
		return c, fmt.Errorf("fleet: %s: %w", path, err)
	}
	return c, nil
}
