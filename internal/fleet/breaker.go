package fleet

import (
	"sync"
	"time"

	"gridtrust/internal/metrics"
)

// breaker is a per-peer circuit breaker on the forward path.  Forwarding
// to a dead shard otherwise pays the full dial timeout on every attempt
// of every request while holding an admission slot on the entry shard —
// the breaker converts that to an instant local decision.
//
// State machine:
//
//	closed ──(threshold consecutive failures)──▶ open
//	open ──(cooldown elapsed)──▶ half-open (one probe allowed)
//	half-open ──(probe succeeds)──▶ closed
//	half-open ──(probe fails)──▶ open (cooldown restarts)
//
// Any success closes the breaker and resets the failure count; attempts
// that never judged the peer (a cached connection found already broken)
// release their probe slot via cancel without a transition.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration

	state    breakerState
	fails    int // consecutive failures while closed
	openedAt time.Time
	probing  bool // a half-open probe is in flight

	opens  uint64
	closes uint64
	openC  *metrics.Counter
	closeC *metrics.Counter
}

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

func newBreaker(threshold int, cooldown time.Duration, openC, closeC *metrics.Counter) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, openC: openC, closeC: closeC}
}

// allow reports whether an attempt against the peer may proceed.  An
// open breaker past its cooldown transitions to half-open and admits
// the caller as the single probe.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if time.Since(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	default: // half-open: one probe at a time
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// record reports the outcome of an admitted attempt.
func (b *breaker) record(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		if b.state != breakerClosed {
			b.closes++
			b.closeC.Inc()
		}
		b.state = breakerClosed
		b.fails = 0
		b.probing = false
		return
	}
	switch b.state {
	case breakerClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.tripLocked()
		}
	case breakerHalfOpen:
		b.probing = false
		b.tripLocked()
	case breakerOpen:
		// A straggler attempt admitted before the trip; already open.
	}
}

// cancel releases an admitted attempt that never judged the peer (e.g.
// the cached connection was found broken before any bytes were written)
// without a state transition.
func (b *breaker) cancel() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerHalfOpen {
		b.probing = false
	}
}

// tripLocked opens the breaker.  Callers hold mu.
func (b *breaker) tripLocked() {
	b.state = breakerOpen
	b.openedAt = time.Now()
	b.fails = 0
	b.opens++
	b.openC.Inc()
}

// snapshot reports the current state and lifetime transition counts.
func (b *breaker) snapshot() (state string, opens, closes uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state.String(), b.opens, b.closes
}
