package fleet

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"gridtrust/internal/core"
	"gridtrust/internal/grid"
	"gridtrust/internal/rmswire"
	"gridtrust/internal/trust"
)

// fleetTopology builds the shared static topology every shard loads:
// four grid domains, each with one RD (one machine) and one CD holding
// one client, so ring ownership spreads keys across shards.
func fleetTopology(t *testing.T) *grid.Topology {
	t.Helper()
	gds := make([]*grid.GridDomain, 4)
	for i := range gds {
		id := grid.DomainID(i)
		gds[i] = &grid.GridDomain{
			ID: id,
			RD: &grid.ResourceDomain{
				ID: id, Owner: "org",
				Supported: map[grid.Activity]grid.TrustLevel{
					grid.ActCompute: grid.LevelC,
					grid.ActStorage: grid.LevelC,
				},
				RTL:      grid.LevelA,
				Machines: []*grid.Machine{{ID: grid.MachineID(i), RD: id}},
			},
			CD: &grid.ClientDomain{
				ID:      id,
				Sought:  map[grid.Activity]grid.TrustLevel{grid.ActCompute: grid.LevelC},
				RTL:     grid.LevelA,
				Clients: []*grid.Client{{ID: grid.ClientID(i), CD: id}},
			},
		}
	}
	top, err := grid.NewTopology(gds...)
	if err != nil {
		t.Fatal(err)
	}
	return top
}

// reservePort grabs an ephemeral port and releases it so a config can
// name the address before the listener exists (fleet configs are
// static: peers must know each other's gossip address up front).
func reservePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()
	return addr
}

type testShard struct {
	name   string
	trms   *core.TRMS
	srv    *rmswire.Server
	fl     *Fleet
	client *rmswire.Client
}

// startFleet brings up n in-process shards sharing one topology shape,
// gossiping every 20ms with the given staleness bound.
func startFleet(t *testing.T, n int, bound time.Duration) ([]*testShard, Config) {
	t.Helper()
	return startFleetCfg(t, n, bound, nil)
}

// startFleetCfg is startFleet with a hook to adjust the fleet config
// knobs before any shard starts.
func startFleetCfg(t *testing.T, n int, bound time.Duration, mutate func(*Config)) ([]*testShard, Config) {
	t.Helper()
	shards := make([]*testShard, n)
	cfg := Config{
		GossipIntervalMS: 20,
		StalenessBoundMS: bound.Milliseconds(),
		ForwardAttempts:  3,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	for i := 0; i < n; i++ {
		trms, err := core.New(core.Config{
			Topology: fleetTopology(t),
			Trust:    trust.Config{Alpha: 1, Beta: 0, Smoothing: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := rmswire.NewServer(trms)
		if err != nil {
			t.Fatal(err)
		}
		addr, err := srv.ListenAndServe("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		name := fmt.Sprintf("s%d", i)
		cfg.Shards = append(cfg.Shards, ShardConfig{
			Name: name, Addr: addr.String(), TrustAddr: reservePort(t),
		})
		shards[i] = &testShard{name: name, trms: trms, srv: srv}
	}
	for i, s := range shards {
		fl, err := Start(cfg, s.name, s.srv, s.trms)
		if err != nil {
			t.Fatal(err)
		}
		s.fl = fl
		client, err := rmswire.Dial(cfg.Shards[i].Addr)
		if err != nil {
			t.Fatal(err)
		}
		s.client = client
	}
	t.Cleanup(func() {
		for _, s := range shards {
			s.client.Close()
			s.srv.Close()
			s.fl.Close()
			s.trms.Close()
		}
	})
	return shards, cfg
}

// ownerOf maps a client ID to its owning shard index under the fleet's
// ring (all shards share one ring, so any shard's view works).
func ownerOf(shards []*testShard, client int) int {
	return shards[0].fl.Ring().OwnerIndex(CDKey(grid.DomainID(client)))
}

func TestForwardingPlacesOnOwnerAndRoutesReports(t *testing.T) {
	shards, _ := startFleet(t, 3, time.Second)

	// Every submit enters through shard 0; mis-routed ones must be
	// placed on (and namespaced by) their ring owner.
	placements := make(map[int]*rmswire.PlacementInfo)
	forwards := 0
	for c := 0; c < 4; c++ {
		key := fmt.Sprintf("k-%d", c)
		p, err := shards[0].client.SubmitKeyed(key, grid.ClientID(c),
			[]grid.Activity{grid.ActCompute}, grid.LevelE, []float64{100, 110, 120, 130}, 0)
		if err != nil {
			t.Fatalf("submit client %d: %v", c, err)
		}
		owner := ownerOf(shards, c)
		if got := int(p.ID >> rmswire.ShardIDShift); got != owner {
			t.Fatalf("client %d: placement %d namespaced to shard %d, ring owner is %d", c, p.ID, got, owner)
		}
		if owner != 0 {
			forwards++
		}
		placements[c] = p
	}
	if forwards == 0 {
		t.Fatal("ring placed every CD on the entry shard; test exercised no forwarding")
	}

	// Reports enter through shard 1 and must reach whichever shard
	// minted the placement, purely from the ID's high bits.
	for c, p := range placements {
		if err := shards[1].client.Report(p.ID, 6, 1); err != nil {
			t.Fatalf("report client %d via shard 1: %v", c, err)
		}
	}
	// A duplicate report must surface the owner's already-reported
	// error through the relay unchanged.
	err := shards[1].client.Report(placements[0].ID, 6, 2)
	if err == nil || !strings.Contains(err.Error(), "already-reported") {
		t.Fatalf("duplicate report: want already-reported error, got %v", err)
	}

	// Exactly-once accounting: each placement lives on exactly one
	// shard, and the books sum across the fleet.
	totalPlaced := 0
	for _, s := range shards {
		totalPlaced += s.trms.Placed()
	}
	if totalPlaced != 4 {
		t.Fatalf("fleet placed %d tasks for 4 submits", totalPlaced)
	}

	// Forward metrics must show shard 0 relaying to its peers.
	snap := shards[0].srv.Metrics().Snapshot()
	fwd := uint64(0)
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, "fleet_forward_ok_") {
			fwd += v
		}
	}
	// Mis-routed submits plus any reports shard 1 relayed through 0's
	// placements don't land here; shard 0 forwarded `forwards` submits.
	if fwd < uint64(forwards) {
		t.Fatalf("shard 0 fleet_forward_ok_* = %d, want >= %d", fwd, forwards)
	}
	if snap.Histograms[MetricForwardNS].Count == 0 {
		t.Fatal("fleet_forward_ns histogram empty after forwarding")
	}
}

func TestForwardedIdempotencyKeyReplaysAtOwner(t *testing.T) {
	shards, _ := startFleet(t, 3, time.Second)
	var c int
	for c = 0; c < 4; c++ {
		if ownerOf(shards, c) != 0 {
			break
		}
	}
	p1, err := shards[0].client.SubmitKeyed("dup", grid.ClientID(c),
		[]grid.Activity{grid.ActCompute}, grid.LevelE, []float64{100, 110, 120, 130}, 0)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := shards[0].client.SubmitKeyed("dup", grid.ClientID(c),
		[]grid.Activity{grid.ActCompute}, grid.LevelE, []float64{100, 110, 120, 130}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p1.ID != p2.ID {
		t.Fatalf("retry of forwarded key double-placed: %d then %d", p1.ID, p2.ID)
	}
	total := 0
	for _, s := range shards {
		total += s.trms.Placed()
	}
	if total != 1 {
		t.Fatalf("fleet placed %d for one keyed submit retried once", total)
	}
}

func TestFailoverServesKeysOfDeadOwnerLocally(t *testing.T) {
	shards, _ := startFleet(t, 2, time.Second)
	var c int
	for c = 0; c < 4; c++ {
		if ownerOf(shards, c) == 1 {
			break
		}
	}
	if c == 4 {
		t.Skip("ring gave shard 1 no CDs (vnode layout)")
	}
	// Kill the owner outright: its listener refuses, so every forward
	// attempt is a pure dial error — provably never delivered.
	shards[1].srv.Close()

	p, err := shards[0].client.SubmitKeyed("orphan", grid.ClientID(c),
		[]grid.Activity{grid.ActCompute}, grid.LevelE, []float64{100, 110, 120, 130}, 0)
	if err != nil {
		t.Fatalf("failover submit: %v", err)
	}
	if got := int(p.ID >> rmswire.ShardIDShift); got != 0 {
		t.Fatalf("failover placement namespaced to shard %d, want entry shard 0", got)
	}

	// The retry must replay from shard 0's local idempotency table —
	// not re-forward toward the (possibly resurrected) owner.
	p2, err := shards[0].client.SubmitKeyed("orphan", grid.ClientID(c),
		[]grid.Activity{grid.ActCompute}, grid.LevelE, []float64{100, 110, 120, 130}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p2.ID != p.ID {
		t.Fatalf("failover key replayed as %d, originally %d", p2.ID, p.ID)
	}

	// Its report routes to shard 0 by ID — the dead owner is never needed.
	if err := shards[0].client.Report(p.ID, 6, 1); err != nil {
		t.Fatalf("report failover placement: %v", err)
	}

	snap := shards[0].srv.Metrics().Snapshot()
	if got := snap.Counters[metricFailover("s1")]; got != 1 {
		t.Fatalf("fleet_forward_failover_s1_total = %d, want 1", got)
	}
}

func TestAmbiguouslyForwardedKeyNeverFailsOver(t *testing.T) {
	shards, _ := startFleet(t, 2, time.Second)
	var c int
	for c = 0; c < 4; c++ {
		if ownerOf(shards, c) == 1 {
			break
		}
	}
	if c == 4 {
		t.Skip("ring gave shard 1 no CDs (vnode layout)")
	}
	shards[1].srv.Close()

	// Simulate an earlier ambiguous forward of this key: it may sit
	// durably placed on the (now dead) owner, so failover is forbidden
	// and the client must keep retrying until the owner returns.
	r := shards[0].fl.router
	r.mu.Lock()
	r.forwarded["limbo"] = struct{}{}
	r.mu.Unlock()

	_, err := shards[0].client.SubmitKeyed("limbo", grid.ClientID(c),
		[]grid.Activity{grid.ActCompute}, grid.LevelE, []float64{100, 110, 120, 130}, 0)
	var oe *rmswire.OverloadedError
	if !errors.As(err, &oe) {
		t.Fatalf("ambiguous key with dead owner: want retryable OverloadedError, got %v", err)
	}
	for _, s := range shards {
		if s.trms.Placed() != 0 {
			t.Fatalf("shard %s placed an ambiguous key", s.name)
		}
	}
}

func TestZeroForwardAttemptsConfigStillForwards(t *testing.T) {
	// Regression: the shipped fleet configs omit forward_attempts, so
	// the router must resolve 0 to DefaultForwardAttempts.  Before the
	// fix, attempts=0 meant the forward loop never ran and every
	// mis-routed submit silently failed over onto the entry shard.
	if got := (Config{}).MaxForwardAttempts(); got != DefaultForwardAttempts {
		t.Fatalf("zero config MaxForwardAttempts() = %d, want %d", got, DefaultForwardAttempts)
	}
	shards, _ := startFleetCfg(t, 2, time.Second, func(c *Config) { c.ForwardAttempts = 0 })
	if got := shards[0].fl.router.attempts; got != DefaultForwardAttempts {
		t.Fatalf("router attempts = %d, want %d", got, DefaultForwardAttempts)
	}
	var c int
	for c = 0; c < 4; c++ {
		if ownerOf(shards, c) == 1 {
			break
		}
	}
	if c == 4 {
		t.Skip("ring gave shard 1 no CDs (vnode layout)")
	}
	p, err := shards[0].client.SubmitKeyed("zero-attempts", grid.ClientID(c),
		[]grid.Activity{grid.ActCompute}, grid.LevelE, []float64{100, 110, 120, 130}, 0)
	if err != nil {
		t.Fatalf("mis-routed submit with default attempts: %v", err)
	}
	if got := int(p.ID >> rmswire.ShardIDShift); got != 1 {
		t.Fatalf("placement namespaced to shard %d, want ring owner 1 (forwarding disabled?)", got)
	}
	if s0, s1 := shards[0].trms.Placed(), shards[1].trms.Placed(); s0 != 0 || s1 != 1 {
		t.Fatalf("placed s0=%d s1=%d, want the owner shard 1 to hold the placement", s0, s1)
	}

	// A mis-routed report must relay to the owner too (before the fix
	// it synthesized StatusOverloaded forever).
	if err := shards[0].client.Report(p.ID, 6, 1); err != nil {
		t.Fatalf("mis-routed report with default attempts: %v", err)
	}
}

func TestMintedForwardKeysAreNotRetained(t *testing.T) {
	shards, _ := startFleet(t, 2, time.Second)
	var c int
	for c = 0; c < 4; c++ {
		if ownerOf(shards, c) == 1 {
			break
		}
	}
	if c == 4 {
		t.Skip("ring gave shard 1 no CDs (vnode layout)")
	}
	// Keyless mis-routed submits get router-minted idempotency keys; a
	// client can never replay one, so the forwarded set must not grow
	// (it would leak one entry per keyless submit for the process
	// lifetime).  Client-supplied keys are the set's whole purpose and
	// must be retained.
	for i := 0; i < 3; i++ {
		if _, err := shards[0].client.Submit(grid.ClientID(c),
			[]grid.Activity{grid.ActCompute}, grid.LevelE, []float64{100, 110, 120, 130}, 0); err != nil {
			t.Fatalf("keyless submit %d: %v", i, err)
		}
	}
	r := shards[0].fl.router
	r.mu.Lock()
	n := len(r.forwarded)
	r.mu.Unlock()
	if n != 0 {
		t.Fatalf("forwarded set retained %d router-minted keys, want 0", n)
	}
	if _, err := shards[0].client.SubmitKeyed("sticky", grid.ClientID(c),
		[]grid.Activity{grid.ActCompute}, grid.LevelE, []float64{100, 110, 120, 130}, 0); err != nil {
		t.Fatal(err)
	}
	r.mu.Lock()
	_, kept := r.forwarded["sticky"]
	r.mu.Unlock()
	if !kept {
		t.Fatal("client-supplied forwarded key was not retained")
	}
}

func TestGossipClaimsFuseConservativelyAndExpire(t *testing.T) {
	shards, cfg := startFleet(t, 2, 500*time.Millisecond)
	toa := grid.MustToA(grid.ActCompute)

	// Shard 1 learns (locally, authoritatively) that RD 2 collapsed for
	// CD 0's compute work.  Shard 0 has only its seeded LevelC view.
	if err := shards[1].trms.Table().Set(0, 2, grid.ActCompute, grid.LevelA); err != nil {
		t.Fatal(err)
	}
	wantVersion := shards[1].trms.Table().Version()

	// Gossip must converge: shard 0's synced version for peer s1
	// reaches s1's own table version within a few intervals.
	deadline := time.Now().Add(5 * time.Second)
	for {
		info := shards[0].fl.Status()
		if len(info.Peers) == 1 && info.Peers[0].Version >= wantVersion {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("gossip never converged: %+v", info.Peers)
		}
		time.Sleep(10 * time.Millisecond)
	}

	claims := shards[0].fl.claims
	// Fresh claim: fused OTL = min(local C, peer claim A) = A.
	if got := claims.FuseOTL(0, 2, toa, grid.LevelC); got != grid.LevelA {
		t.Fatalf("fused OTL = %v, want LevelA from peer claim", got)
	}
	// Local experience always wins downward: a local level below every
	// claim is untouched.
	if got := claims.FuseOTL(0, 2, toa, grid.LevelNone); got != grid.LevelNone {
		t.Fatalf("fusion raised local LevelNone to %v", got)
	}
	// Peers replicate their whole table, so even an untouched triple
	// carries the peer's seeded LevelC claim: min(local D, claim C) = C.
	if got := claims.FuseOTL(3, 3, toa, grid.LevelD); got != grid.LevelC {
		t.Fatalf("fused OTL for seeded triple = %v, want LevelC", got)
	}

	// Staleness bound: freeze gossip and advance the claims clock past
	// the bound — the peer's claims must silently drop out of fusion.
	claims.now = func() time.Time {
		return time.Now().Add(cfg.StalenessBound() + time.Second)
	}
	if got := claims.FuseOTL(0, 2, toa, grid.LevelC); got != grid.LevelC {
		t.Fatalf("stale claim still fused: got %v, want local LevelC", got)
	}
	info := shards[0].fl.Status()
	if len(info.Peers) != 1 || !info.Peers[0].Stale {
		t.Fatalf("status does not mark peer stale: %+v", info.Peers)
	}
}

func TestSingleShardFleetIsLocalOnly(t *testing.T) {
	shards, _ := startFleet(t, 1, time.Second)
	p, err := shards[0].client.SubmitKeyed("solo", 2,
		[]grid.Activity{grid.ActCompute}, grid.LevelE, []float64{100, 110, 120, 130}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.ID>>rmswire.ShardIDShift != 0 {
		t.Fatalf("single-shard placement %d carries a namespace prefix", p.ID)
	}
	info, err := shards[0].client.Fleet()
	if err != nil {
		t.Fatal(err)
	}
	if info.Shard != "s0" || len(info.Members) != 1 || len(info.Peers) != 0 {
		t.Fatalf("single-shard fleet info %+v", info)
	}
	snap := shards[0].srv.Metrics().Snapshot()
	for name := range snap.Counters {
		if strings.HasPrefix(name, "fleet_forward_") || strings.HasPrefix(name, "fleet_gossip_") {
			t.Fatalf("single-shard fleet registered per-peer metric %s", name)
		}
	}
	if shards[0].fl.TrustAddr() != "" {
		t.Fatal("single-shard fleet bound a trust-gossip listener")
	}
}

func TestFleetOpOnNonFleetDaemonErrors(t *testing.T) {
	trms, err := core.New(core.Config{
		Topology: fleetTopology(t),
		Trust:    trust.Config{Alpha: 1, Beta: 0, Smoothing: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := rmswire.NewServer(trms)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { srv.Close(); trms.Close() }()
	client, err := rmswire.Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Fleet(); err == nil || !strings.Contains(err.Error(), "fleet") {
		t.Fatalf("fleet op on plain daemon: %v", err)
	}
}
