package fleet

import (
	"testing"
	"time"

	"gridtrust/internal/metrics"
)

func newTestBreaker(threshold int, cooldown time.Duration) (*breaker, *metrics.Registry) {
	reg := metrics.NewRegistry()
	return newBreaker(threshold, cooldown,
		reg.Counter(metricBreakerOpen("p")), reg.Counter(metricBreakerClose("p"))), reg
}

func TestBreakerOpensAfterConsecutiveFailures(t *testing.T) {
	b, reg := newTestBreaker(3, time.Hour)
	for i := 0; i < 2; i++ {
		if !b.allow() {
			t.Fatalf("closed breaker denied attempt %d", i)
		}
		b.record(false)
	}
	if state, _, _ := b.snapshot(); state != "closed" {
		t.Fatalf("state after 2 failures = %s, want closed", state)
	}
	b.allow()
	b.record(false) // third consecutive failure trips it
	if state, opens, _ := b.snapshot(); state != "open" || opens != 1 {
		t.Fatalf("after threshold: state=%s opens=%d, want open/1", state, opens)
	}
	if b.allow() {
		t.Fatal("open breaker inside cooldown admitted an attempt")
	}
	if got := reg.Snapshot().Counters[metricBreakerOpen("p")]; got != 1 {
		t.Fatalf("open counter = %d, want 1", got)
	}
}

func TestBreakerSuccessResetsFailureStreak(t *testing.T) {
	b, _ := newTestBreaker(3, time.Hour)
	b.allow()
	b.record(false)
	b.allow()
	b.record(false)
	b.allow()
	b.record(true) // streak broken
	b.allow()
	b.record(false)
	b.allow()
	b.record(false)
	if state, _, _ := b.snapshot(); state != "closed" {
		t.Fatalf("state = %s after interleaved success, want closed", state)
	}
}

func TestBreakerHalfOpenProbeCycle(t *testing.T) {
	const cooldown = 20 * time.Millisecond
	b, reg := newTestBreaker(1, cooldown)
	b.allow()
	b.record(false) // threshold 1: open immediately
	if b.allow() {
		t.Fatal("admitted during cooldown")
	}
	time.Sleep(2 * cooldown)

	// First caller after cooldown becomes the single half-open probe.
	if !b.allow() {
		t.Fatal("cooldown elapsed but probe denied")
	}
	if state, _, _ := b.snapshot(); state != "half-open" {
		t.Fatalf("state = %s, want half-open", state)
	}
	if b.allow() {
		t.Fatal("second concurrent probe admitted")
	}

	// Probe failure reopens; probe success (after another cooldown)
	// closes.
	b.record(false)
	if state, opens, _ := b.snapshot(); state != "open" || opens != 2 {
		t.Fatalf("after failed probe: state=%s opens=%d, want open/2", state, opens)
	}
	time.Sleep(2 * cooldown)
	if !b.allow() {
		t.Fatal("second probe denied")
	}
	b.record(true)
	if state, _, closes := b.snapshot(); state != "closed" || closes != 1 {
		t.Fatalf("after successful probe: state=%s closes=%d, want closed/1", state, closes)
	}
	if got := reg.Snapshot().Counters[metricBreakerClose("p")]; got != 1 {
		t.Fatalf("close counter = %d, want 1", got)
	}
}

func TestBreakerCancelReleasesProbeWithoutJudgment(t *testing.T) {
	const cooldown = 10 * time.Millisecond
	b, _ := newTestBreaker(1, cooldown)
	b.allow()
	b.record(false)
	time.Sleep(2 * cooldown)
	if !b.allow() {
		t.Fatal("probe denied")
	}
	b.cancel() // the attempt never judged the peer
	if state, opens, closes := b.snapshot(); state != "half-open" || opens != 1 || closes != 0 {
		t.Fatalf("after cancel: state=%s opens=%d closes=%d, want half-open/1/0", state, opens, closes)
	}
	// The released slot admits the next probe.
	if !b.allow() {
		t.Fatal("released probe slot not reusable")
	}
}
