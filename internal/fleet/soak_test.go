package fleet

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"gridtrust/internal/chaos"
	"gridtrust/internal/core"
	"gridtrust/internal/grid"
	"gridtrust/internal/load"
	"gridtrust/internal/rmswire"
	"gridtrust/internal/testutil"
	"gridtrust/internal/trust"
	"gridtrust/internal/wal"
)

// soakSeed fixes every random choice in the chaos soak — wire fates,
// load arrivals, reservoir sampling — so a failure reproduces bit-for-
// bit from the seed alone.
const soakSeed = 0xC4A05

// soakShard is one journaled, chaos-wrapped member of the soak fleet.
// Unlike testShard it can crash (SIGKILL-equivalent: sockets die, the
// WAL is abandoned without a final flush) and reboot over the same WAL
// directory on the same addresses.
type soakShard struct {
	name  string
	dir   string
	addr  string // fixed rmswire address, survives reboot
	taddr string // fixed trust-gossip address, survives reboot
	wire  *chaos.Wire

	mu   sync.Mutex
	trms *core.TRMS
	srv  *rmswire.Server
	fl   *Fleet
	log  *wal.Log
}

// boot starts (or restarts) the shard: recover the WAL, replay it into
// a fresh TRMS, serve through the shard's chaos wire, join the fleet.
func (s *soakShard) boot(topo *grid.Topology, cfg Config) error {
	trms, err := core.New(core.Config{
		Topology: topo,
		Trust:    trust.Config{Alpha: 1, Beta: 0, Smoothing: 1},
	})
	if err != nil {
		return err
	}
	srv, err := rmswire.NewServer(trms)
	if err != nil {
		return err
	}
	log, rec, err := wal.Create(s.dir, wal.Options{})
	if err != nil {
		return err
	}
	if err := srv.AttachJournal(log, rec, 0); err != nil {
		return err
	}
	ln, err := net.Listen("tcp", s.addr)
	if err != nil {
		return fmt.Errorf("rebind %s: %w", s.addr, err)
	}
	shardCfg := cfg
	shardCfg.WrapListener = s.wire.Listener
	// Start installs the router and claim fuser; only then may traffic
	// flow (the unsynchronized reads in the submit path rely on the
	// happens-before of the accept-loop start).
	fl, err := Start(shardCfg, s.name, srv, trms)
	if err != nil {
		_ = ln.Close()
		return err
	}
	srv.ServeListener(s.wire.Listener(ln))
	s.mu.Lock()
	s.trms, s.srv, s.fl, s.log = trms, srv, fl, log
	s.mu.Unlock()
	return nil
}

// crash is the SIGKILL-equivalent: every socket dies and the WAL is
// abandoned mid-flight — no final Close, no checkpoint.  Only what
// fsync acked survives, which is exactly the durability contract the
// reboot's recovery is asserted against.  (Goroutines are reaped so
// the leak check stays meaningful; a real SIGKILL reaps harder.)
func (s *soakShard) crash() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.srv.Close()
	s.fl.Close()
	s.trms.Close()
	s.log = nil // deliberately not Closed
}

// stop is the end-of-test teardown (flushes the WAL, unlike crash).
func (s *soakShard) stop() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.srv.Close()
	s.fl.Close()
	s.trms.Close()
	if s.log != nil {
		_ = s.log.Close()
	}
}

// TestChaosSoak drives a gridload storm through a three-shard journaled
// fleet while a scripted, seeded fault schedule degrades one shard's
// wire, black-holes another, and SIGKILL-restarts a third mid-run —
// then audits the books: every idempotency key resolved, durable
// anchors balanced across the fleet, the partitioned peer dropped out
// of fusion within the staleness bound, the circuit breaker opened and
// closed, and no goroutine outlived its owner.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak takes ~10s")
	}
	t.Cleanup(testutil.LeakCheck(t)) // registered first: runs after teardown

	const (
		nShards     = 3
		opTimeout   = 250 * time.Millisecond
		breakerCool = 250 * time.Millisecond
	)
	cfg := Config{
		GossipIntervalMS:     25,
		StalenessBoundMS:     300,
		GossipTimeoutMS:      150,
		ForwardAttempts:      3,
		ForwardDialTimeoutMS: opTimeout.Milliseconds(),
		ForwardOpTimeoutMS:   opTimeout.Milliseconds(),
		BreakerThreshold:     3,
		BreakerCooldownMS:    breakerCool.Milliseconds(),
	}
	shards := make([]*soakShard, nShards)
	for i := range shards {
		shards[i] = &soakShard{
			name:  fmt.Sprintf("s%d", i),
			dir:   t.TempDir(),
			addr:  reservePort(t),
			taddr: reservePort(t),
			wire:  chaos.NewWire(soakSeed + uint64(i)),
		}
		cfg.Shards = append(cfg.Shards, ShardConfig{
			Name: shards[i].name, Addr: shards[i].addr, TrustAddr: shards[i].taddr,
		})
	}
	topo := fleetTopology(t)
	for _, s := range shards {
		if err := s.boot(topo, cfg); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, w := range []*chaos.Wire{shards[0].wire, shards[1].wire, shards[2].wire} {
			w.Partition(false)
		}
		for _, s := range shards {
			s.stop()
		}
	})

	// The scripted schedule, relative to storm start:
	//   0.6s  s1's wire degrades: latency, trickle, occasional resets
	//   1.5s  s2 black-holed (partition)
	//   2.5s  s2 heals; s1's wire faults clear
	//   3.0s  s1 crashes (SIGKILL-equivalent) and reboots over its WAL
	schedule := func(start time.Time, done <-chan struct{}, errs chan<- error) {
		at := func(d time.Duration) bool {
			select {
			case <-time.After(time.Until(start.Add(d))):
				return true
			case <-done:
				return false
			}
		}
		if !at(600 * time.Millisecond) {
			return
		}
		shards[1].wire.SetFaults(chaos.Faults{
			Latency: time.Millisecond, Jitter: 2 * time.Millisecond,
			TrickleProb: 0.02, ResetProb: 0.05, ResetAfterMax: 64 << 10,
		})
		if !at(1500 * time.Millisecond) {
			return
		}
		shards[2].wire.Partition(true)
		if !at(2500 * time.Millisecond) {
			return
		}
		shards[2].wire.Partition(false)
		shards[1].wire.SetFaults(chaos.Faults{})
		if !at(3 * time.Second) {
			return
		}
		shards[1].crash()
		if err := shards[1].boot(topo, cfg); err != nil {
			errs <- fmt.Errorf("reboot s1: %w", err)
		}
	}

	stormDone := make(chan struct{})
	schedErrs := make(chan error, 1)
	var schedWG sync.WaitGroup
	schedWG.Add(1)
	go func() {
		defer schedWG.Done()
		schedule(time.Now(), stormDone, schedErrs)
	}()

	rep, err := load.Run(load.Config{
		FleetAddrs:     []string{shards[0].addr, shards[1].addr, shards[2].addr},
		Clients:        6,
		Duration:       4 * time.Second,
		ReportFraction: 0.5,
		Seed:           soakSeed,
		KeyPrefix:      "soak",
		MaxAttempts:    12,
		OpTimeout:      2 * time.Second,
		Budget:         20 * time.Second,
		SettleTimeout:  30 * time.Second,
	})
	close(stormDone)
	schedWG.Wait()
	if err != nil {
		t.Fatalf("load storm: %v", err)
	}
	select {
	case serr := <-schedErrs:
		t.Fatal(serr)
	default:
	}

	// Book balance: every key resolved, durable anchors exact across the
	// fleet even though s1 was SIGKILLed and replayed mid-run.
	if rep.SubmitsOK == 0 {
		t.Fatal("storm placed nothing; the soak exercised no paths")
	}
	if rep.Unresolved != 0 {
		t.Fatalf("%d keys still unresolved after settle", rep.Unresolved)
	}
	if !rep.Reconcile.DaemonRestarted {
		t.Fatal("reconcile did not observe the mid-run crash-restart")
	}
	if !rep.Reconcile.OK {
		for _, c := range rep.Reconcile.Checks {
			if !c.OK && !c.Skipped {
				t.Errorf("reconcile %s: got %d want %d (%s)", c.Name, c.Got, c.Want, c.Note)
			}
		}
		t.Fatal("durable-anchor book balance failed under chaos")
	}
	t.Logf("storm: %d submits ok, %d reports ok, %d ambiguous (settled %d), throughput %.0f rps",
		rep.SubmitsOK, rep.ReportsOK, rep.Ambiguous, rep.Settled, rep.ThroughputRPS)

	// Deterministic breaker + staleness exercise, from shard 0's view.
	// The ring layout is deterministic, so pick a CD owned by some other
	// shard and drive submits for it through s0 while that owner is
	// black-holed.
	ring := shards[0].fl.Ring()
	victimCD, victim := -1, -1
	for c := 0; c < 4; c++ {
		if owner := ring.Owner(CDKey(grid.DomainID(c))); owner != "s0" {
			victimCD = c
			victim = cfg.Index(owner)
			break
		}
	}
	if victim < 0 {
		t.Fatal("ring assigned every CD to s0; cannot exercise forwarding")
	}
	vName := cfg.Shards[victim].Name
	cli, err := rmswire.Dial(shards[0].addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	view := func() rmswire.FleetPeerInfo {
		fi, err := cli.Fleet()
		if err != nil {
			t.Fatalf("fleet op: %v", err)
		}
		for _, p := range fi.Peers {
			if p.Name == vName {
				return p
			}
		}
		t.Fatalf("no peer %s in s0's fleet view", vName)
		return rmswire.FleetPeerInfo{}
	}

	shards[victim].wire.Partition(true)

	// Staleness: the black-holed peer leaves fusion within the bound,
	// at one deadline-bounded gossip round per tick.
	waitFor(t, cfg.StalenessBound()+2*cfg.GossipTimeout()+2*time.Second, func() bool {
		return view().Stale
	}, "black-holed peer never dropped out of fusion")

	// Breaker: forwards to the victim burn op deadlines until the
	// threshold trips; one submit's attempt budget is exactly the
	// threshold, so this opens within a few submits regardless of what
	// state the storm left the breaker in.
	submit := func(key string) (time.Duration, error) {
		begin := time.Now()
		_, err := cli.SubmitKeyed(key, grid.ClientID(victimCD),
			[]grid.Activity{grid.ActCompute}, grid.LevelE, []float64{100, 110, 120, 130}, 0)
		return time.Since(begin), err
	}
	opened := false
	for i := 0; i < 10 && !opened; i++ {
		_, _ = submit(fmt.Sprintf("soakbrk-%d", i))
		opened = view().Breaker == "open"
	}
	pv := view()
	if !opened || pv.BreakerOpens < 1 {
		t.Fatalf("breaker to %s never opened under black-hole (state=%s opens=%d)",
			vName, pv.Breaker, pv.BreakerOpens)
	}

	// Open breaker ⇒ failover without paying any timeout.
	elapsed, err := submit("soakbrk-fast")
	if err != nil {
		t.Fatalf("breaker-open submit did not fail over: %v", err)
	}
	if elapsed >= opTimeout {
		t.Fatalf("breaker-open failover took %v, paid a timeout (%v)", elapsed, opTimeout)
	}

	// Heal: the half-open probe closes the breaker and gossip resumes.
	shards[victim].wire.Partition(false)
	time.Sleep(breakerCool + 50*time.Millisecond)
	closed := false
	for i := 0; i < 10 && !closed; i++ {
		_, _ = submit(fmt.Sprintf("soakheal-%d", i))
		closed = view().Breaker == "closed"
		if !closed {
			time.Sleep(breakerCool)
		}
	}
	pv = view()
	if !closed || pv.BreakerCloses < 1 {
		t.Fatalf("breaker to %s never closed after heal (state=%s closes=%d)",
			vName, pv.Breaker, pv.BreakerCloses)
	}
	waitFor(t, 10*time.Second, func() bool {
		return !view().Stale
	}, "peer never rejoined fusion after heal")
}
