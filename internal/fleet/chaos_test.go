package fleet

import (
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"gridtrust/internal/chaos"
	"gridtrust/internal/core"
	"gridtrust/internal/grid"
	"gridtrust/internal/rmswire"
	"gridtrust/internal/testutil"
	"gridtrust/internal/trust"
)

// startChaosFleet mirrors startFleetCfg with every shard's listeners —
// rmswire and trust gossip — routed through a per-shard chaos.Wire, so
// tests can partition or degrade individual shards.  Seeded per shard
// for reproducible fates.
func startChaosFleet(t *testing.T, n int, seed uint64, mutate func(*Config)) ([]*testShard, []*chaos.Wire, Config) {
	t.Helper()
	shards := make([]*testShard, n)
	wires := make([]*chaos.Wire, n)
	cfg := Config{
		GossipIntervalMS: 20,
		StalenessBoundMS: 400,
		GossipTimeoutMS:  200,
		ForwardAttempts:  3,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	for i := 0; i < n; i++ {
		wires[i] = chaos.NewWire(seed + uint64(i))
		trms, err := core.New(core.Config{
			Topology: fleetTopology(t),
			Trust:    trust.Config{Alpha: 1, Beta: 0, Smoothing: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := rmswire.NewServer(trms)
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := srv.ServeListener(wires[i].Listener(ln))
		name := fmt.Sprintf("s%d", i)
		cfg.Shards = append(cfg.Shards, ShardConfig{
			Name: name, Addr: addr.String(), TrustAddr: reservePort(t),
		})
		shards[i] = &testShard{name: name, trms: trms, srv: srv}
	}
	for i, s := range shards {
		shardCfg := cfg
		shardCfg.WrapListener = wires[i].Listener
		fl, err := Start(shardCfg, s.name, s.srv, s.trms)
		if err != nil {
			t.Fatal(err)
		}
		s.fl = fl
		client, err := rmswire.Dial(cfg.Shards[i].Addr)
		if err != nil {
			t.Fatal(err)
		}
		s.client = client
	}
	t.Cleanup(func() {
		// Heal everything first so teardown never waits on a partition.
		for _, w := range wires {
			w.Partition(false)
		}
		for _, s := range shards {
			s.client.Close()
			s.srv.Close()
			s.fl.Close()
			s.trms.Close()
		}
	})
	return shards, wires, cfg
}

// peerView fetches shard's fleet view of the named peer.
func peerView(t *testing.T, s *testShard, peer string) rmswire.FleetPeerInfo {
	t.Helper()
	fi, err := s.client.Fleet()
	if err != nil {
		t.Fatalf("fleet op on %s: %v", s.name, err)
	}
	for _, p := range fi.Peers {
		if p.Name == peer {
			return p
		}
	}
	t.Fatalf("shard %s has no peer %s in its fleet view", s.name, peer)
	return rmswire.FleetPeerInfo{}
}

// TestBreakerFastFailsToFailover proves the acceptance criterion "an
// open breaker routes forwards to failover/overload without paying the
// dial timeout": a black-holed owner trips the breaker after the
// configured threshold, after which an eligible submit fails over
// locally in a fraction of the forward op timeout.
func TestBreakerFastFailsToFailover(t *testing.T) {
	t.Cleanup(testutil.LeakCheck(t)) // registered first: runs after fleet teardown
	const opTimeout = 300 * time.Millisecond
	shards, wires, _ := startChaosFleet(t, 2, 11, func(c *Config) {
		c.ForwardAttempts = 1
		c.ForwardOpTimeoutMS = opTimeout.Milliseconds()
		c.ForwardDialTimeoutMS = opTimeout.Milliseconds()
		c.BreakerThreshold = 2
		c.BreakerCooldownMS = time.Hour.Milliseconds() // stay open for the test
	})
	var c int
	for c = 0; c < 4; c++ {
		if ownerOf(shards, c) == 1 {
			break
		}
	}
	if c == 4 {
		t.Skip("ring gave shard 1 no CDs (vnode layout)")
	}

	// Black-hole shard 1: dials still complete (kernel accept queue),
	// but no forwarded frame ever comes back, so every attempt burns the
	// op timeout and is ambiguous (no failover, overloaded to client).
	wires[1].Partition(true)
	for i := 0; i < 2; i++ {
		_, err := shards[0].client.SubmitKeyed(fmt.Sprintf("trip-%d", i), grid.ClientID(c),
			[]grid.Activity{grid.ActCompute}, grid.LevelE, []float64{100, 110, 120, 130}, 0)
		if err == nil {
			t.Fatalf("submit %d through black-holed owner succeeded", i)
		}
	}
	if pv := peerView(t, shards[0], "s1"); pv.Breaker != "open" || pv.BreakerOpens != 1 {
		t.Fatalf("breaker after threshold = %s/opens=%d, want open/1", pv.Breaker, pv.BreakerOpens)
	}

	// With the breaker open, a fresh key provably never reaches the
	// owner, so it fails over locally — and fast.
	start := time.Now()
	p, err := shards[0].client.SubmitKeyed("fast", grid.ClientID(c),
		[]grid.Activity{grid.ActCompute}, grid.LevelE, []float64{100, 110, 120, 130}, 0)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("breaker-open submit: %v", err)
	}
	if got := int(p.ID >> rmswire.ShardIDShift); got != 0 {
		t.Fatalf("breaker-open placement namespaced to shard %d, want entry shard 0", got)
	}
	if elapsed >= opTimeout {
		t.Fatalf("breaker-open submit took %v, paid a timeout (%v)", elapsed, opTimeout)
	}
	snap := shards[0].srv.Metrics().Snapshot()
	if got := snap.Counters[metricBreakerOpen("s1")]; got != 1 {
		t.Fatalf("fleet_breaker_open_s1_total = %d, want 1", got)
	}
	if got := snap.Counters[metricFailover("s1")]; got == 0 {
		t.Fatal("failover counter did not move for the breaker-open submit")
	}
}

// TestBlackholedGossipPeerDropsOutWithinStalenessBound proves the other
// acceptance criterion: a partitioned gossip peer costs one bounded
// round per tick, its claims leave fusion within the staleness bound,
// and gossip self-heals once the partition lifts.
func TestBlackholedGossipPeerDropsOutWithinStalenessBound(t *testing.T) {
	t.Cleanup(testutil.LeakCheck(t)) // registered first: runs after fleet teardown
	shards, wires, cfg := startChaosFleet(t, 2, 23, nil)
	bound := cfg.StalenessBound()

	// Wait for shard 0 to sync peer s1 at least once.
	waitFor(t, 5*time.Second, func() bool {
		return !peerView(t, shards[0], "s1").Stale
	}, "shard 0 never synced peer s1")

	// Partition s1's wire (its trust listener is wrapped by wires[1]).
	// Within the staleness bound plus one gossip timeout of slack, s1's
	// claims must drop out of shard 0's fusion.
	wires[1].Partition(true)
	waitFor(t, bound+2*cfg.GossipTimeout()+time.Second, func() bool {
		return peerView(t, shards[0], "s1").Stale
	}, "black-holed peer never went stale")

	// The gossip goroutine must not be wedged: error counts keep
	// moving, one bounded round per tick.
	errsBefore := peerView(t, shards[0], "s1").SyncErrors
	waitFor(t, 5*time.Second, func() bool {
		return peerView(t, shards[0], "s1").SyncErrors > errsBefore
	}, "gossip loop wedged during partition (no new bounded-round errors)")

	// Heal: the loop redials and the peer comes back fresh.
	wires[1].Partition(false)
	waitFor(t, 10*time.Second, func() bool {
		return !peerView(t, shards[0], "s1").Stale
	}, "peer never recovered after the partition healed")
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestShutdownAbortsForwardBackoff is the satellite regression: a
// forward mid-backoff must notice fleet shutdown instead of sleeping
// out the remaining schedule.  With 1000 attempts against a dead owner
// (≈50s of backoff) and the breaker pinned closed, only the stop-channel
// abort can resolve the in-flight submit quickly after Close.
func TestShutdownAbortsForwardBackoff(t *testing.T) {
	shards, _, _ := startChaosFleet(t, 2, 31, func(c *Config) {
		c.ForwardAttempts = 1000
		c.ForwardOpTimeoutMS = 50
		c.ForwardDialTimeoutMS = 50
		c.BreakerThreshold = 1 << 30 // never trips: isolate the backoff path
	})
	var c int
	for c = 0; c < 4; c++ {
		if ownerOf(shards, c) == 1 {
			break
		}
	}
	if c == 4 {
		t.Skip("ring gave shard 1 no CDs (vnode layout)")
	}
	// Kill the owner, start a forward that would retry for ~50 seconds,
	// then close the fleet under it.
	shards[1].srv.Close()
	done := make(chan error, 1)
	go func() {
		_, err := shards[0].client.SubmitKeyed("drain-race", grid.ClientID(c),
			[]grid.Activity{grid.ActCompute}, grid.LevelE, []float64{100, 110, 120, 130}, 0)
		done <- err
	}()
	time.Sleep(30 * time.Millisecond) // let the forward loop enter its schedule
	shards[0].fl.Close()
	select {
	case err := <-done:
		// Every attempt was a dial failure, so the aborted forward is
		// still proven-unreachable and fails over locally.
		if err != nil && !strings.Contains(err.Error(), "shut") {
			t.Logf("submit resolved with: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("forward did not abort its backoff schedule on fleet close")
	}
}
