// Package fleet shards the trust-aware RMS across N cooperating
// gridtrustd daemons: a deterministic consistent-hash ring partitions
// client domains across shards, mis-routed submits and reports are
// forwarded to the owning shard over rmswire (exactly-once, anchored on
// the same idempotency machinery client retries use), and every shard
// gossips its trust-table deltas to its peers over the trustwire replica
// protocol.  Remotely learned trust enters scheduling decisions only as
// bounded-staleness *claims*, fused conservatively with the local table
// (max trust cost wins, the modelView rule), so a peer's optimism can
// never raise trust above what local direct experience holds.
package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"

	"gridtrust/internal/grid"
)

// DefaultVNodes is the virtual-node count per shard when the fleet
// config leaves it zero.  128 points per member keeps the largest/
// smallest ownership share within a few percent of fair for small
// fleets (see TestRingBalance).
const DefaultVNodes = 128

// Ring is a deterministic consistent-hash ring with virtual nodes.
// Ownership depends only on the member names and the vnode count —
// never on member order or process state — so every shard, the load
// driver and gridctl independently compute identical routing tables.
type Ring struct {
	vnodes  int
	members []string // config order, for index-based lookups
	points  []ringPoint
}

// ringPoint is one virtual node: a hash position owned by a member.
type ringPoint struct {
	hash   uint64
	member int // index into members
}

// NewRing builds a ring over the given member names.  Names must be
// unique and non-empty; vnodes <= 0 selects DefaultVNodes.
func NewRing(members []string, vnodes int) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("fleet: ring needs at least one member")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := make(map[string]struct{}, len(members))
	for _, m := range members {
		if m == "" {
			return nil, fmt.Errorf("fleet: empty member name")
		}
		if _, dup := seen[m]; dup {
			return nil, fmt.Errorf("fleet: duplicate member %q", m)
		}
		seen[m] = struct{}{}
	}
	r := &Ring{
		vnodes:  vnodes,
		members: append([]string(nil), members...),
		points:  make([]ringPoint, 0, len(members)*vnodes),
	}
	for i, m := range members {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:   hashString(fmt.Sprintf("%s#%d", m, v)),
				member: i,
			})
		}
	}
	// Tie-break equal hashes on member name so ownership is independent
	// of config order (hash collisions are astronomically unlikely for
	// realistic fleets, but determinism must not hinge on luck).
	sort.Slice(r.points, func(a, b int) bool {
		pa, pb := r.points[a], r.points[b]
		if pa.hash != pb.hash {
			return pa.hash < pb.hash
		}
		return r.members[pa.member] < r.members[pb.member]
	})
	return r, nil
}

// Members returns the member names in config order.
func (r *Ring) Members() []string { return append([]string(nil), r.members...) }

// VNodes returns the per-member virtual-node count.
func (r *Ring) VNodes() int { return r.vnodes }

// OwnerIndex returns the config-order index of the member owning key.
func (r *Ring) OwnerIndex(key string) int {
	h := hashString(key)
	// First point clockwise from h, wrapping to points[0].
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].member
}

// Owner returns the name of the member owning key.
func (r *Ring) Owner(key string) string { return r.members[r.OwnerIndex(key)] }

// CDKey is the ring key for a client domain: the partition unit of the
// fleet.  Every client in a CD routes to the CD's owner, so the owning
// shard both places that domain's tasks and accumulates its direct
// trust experience.
func CDKey(cd grid.DomainID) string { return fmt.Sprintf("cd:%d", cd) }

// hashString is 64-bit FNV-1a pushed through a splitmix64 finalizer.
// FNV alone clusters badly on the short, near-identical strings vnode
// labels are ("s0#0", "s0#1", ...): neighbouring inputs land on
// neighbouring ring positions and ownership shares drift far from
// fair.  The finalizer's avalanche restores uniformity while staying
// deterministic across processes and platforms.
func hashString(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer (Vigna): full-avalanche bijection
// on uint64.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
