package fleet

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gridtrust/internal/grid"
	"gridtrust/internal/metrics"
	"gridtrust/internal/rmswire"
)

// forwardRetryAfter is the backoff hint on a synthesized
// StatusOverloaded when forwarding is exhausted: the client's retrier
// waits this long, then retries the same idempotency key through the
// same entry shard.  (The dial and op timeouts are config knobs; see
// Config.ForwardDialTimeout / Config.ForwardOpTimeout.)
const forwardRetryAfter = 50 * time.Millisecond

// errBreakerOpen marks forward attempts refused locally by an open
// circuit breaker: no bytes went toward the peer, so for failover
// purposes the op provably never reached the owner.
var errBreakerOpen = errors.New("fleet: circuit breaker open")

// errShutdown aborts a forward's backoff when the fleet is closing.
var errShutdown = errors.New("fleet: shutting down")

// routerPeerMetrics are the per-peer forward counters (nil handles for
// the self slot, which is never forwarded to).
type routerPeerMetrics struct {
	ok       *metrics.Counter // relayed StatusOK responses
	relayErr *metrics.Counter // relayed error/overloaded responses
	fail     *metrics.Counter // forwarding exhausted, retryable synthesized
	failover *metrics.Counter // served locally after proven-unreachable owner
}

// router implements rmswire.Router: it decides, per request, whether
// this shard owns the key and — when it does not — relays the request
// to the owning shard over a cached rmswire connection.
//
// Ownership:
//
//   - submits hash the client's CD onto the ring (all of a client
//     domain's direct experience accumulates on one shard, so the
//     per-CD trust trajectory is exactly the single-daemon one);
//   - reports are routed by the placement ID's embedded shard index
//     (rmswire.ShardIDShift), statelessly — whichever shard minted the
//     placement owns its outcome.
//
// Exactly-once across forwarding: the original idempotency key rides
// the forwarded frame, so forward-level retries dedupe at the owner
// exactly like client-level retries dedupe at a single daemon.  The
// one genuinely dangerous transition is failover — serving a key
// locally because the owner is down.  That is allowed only when this
// router can prove the owner never saw the key: every attempt this op
// failed at dial time (or on a connection already broken before
// anything was written), and no earlier op ever put the key on the
// wire toward a peer (the forwarded set below).  Anything else is
// ambiguous, and ambiguity surfaces to the client as a retryable
// overload so the retry funnels back through this same entry shard —
// where either the local idempotency table (if we failed over) or the
// owner's (if the forward landed) resolves it to the original
// placement.  The guarantee is therefore per entry shard: a client
// must retry a key through the shard it first submitted it to, which
// is what the load driver's pinned workers do.
type router struct {
	self     string
	selfIdx  int
	ring     *Ring
	shards   []ShardConfig
	attempts int

	dialTimeout time.Duration
	opTimeout   time.Duration

	// breakers holds one circuit breaker per peer (nil for the self
	// slot); stop aborts in-flight forward backoffs on fleet shutdown.
	breakers []*breaker
	stop     <-chan struct{}

	// clientCD resolves a wire client ID to its owning CD; built once
	// from the topology so routing never takes the scheduler lock.
	clientCD map[int]grid.DomainID

	forwardNS *metrics.Histogram
	peerM     []routerPeerMetrics

	// instance+fwdSeq generate idempotency keys for keyless forwarded
	// submits, unique per entry-shard process lifetime.
	instance int64
	fwdSeq   atomic.Uint64

	mu    sync.Mutex
	conns map[int]*rmswire.Client

	// forwarded remembers client-supplied idempotency keys that may
	// have reached a peer, to forbid failover for them forever.  It
	// only holds keys a later op could legally replay, i.e. client
	// keys — router-minted fwd-* keys are unique per op and are never
	// recorded.  Growth is one entry per distinct forwarded client key
	// for the process lifetime: bounded by the client keyspace, which
	// clients that reuse or rotate bounded key sets keep small.  A
	// known limit, accepted because dropping an entry early would
	// permit a double placement.
	forwarded map[string]struct{}
}

func newRouter(cfg Config, selfIdx int, ring *Ring, topo *grid.Topology, reg *metrics.Registry, stop <-chan struct{}) *router {
	r := &router{
		self:        cfg.Shards[selfIdx].Name,
		selfIdx:     selfIdx,
		ring:        ring,
		shards:      cfg.Shards,
		attempts:    cfg.MaxForwardAttempts(),
		dialTimeout: cfg.ForwardDialTimeout(),
		opTimeout:   cfg.ForwardOpTimeout(),
		breakers:    make([]*breaker, len(cfg.Shards)),
		stop:        stop,
		clientCD:    make(map[int]grid.DomainID, len(topo.Clients())),
		forwardNS:   reg.Histogram(MetricForwardNS),
		peerM:       make([]routerPeerMetrics, len(cfg.Shards)),
		instance:    time.Now().UnixNano(),
		conns:       make(map[int]*rmswire.Client),
		forwarded:   make(map[string]struct{}),
	}
	for _, c := range topo.Clients() {
		r.clientCD[int(c.ID)] = c.CD
	}
	for i, s := range cfg.Shards {
		if i == selfIdx {
			continue
		}
		r.peerM[i] = routerPeerMetrics{
			ok:       reg.Counter(metricForwardOK(s.Name)),
			relayErr: reg.Counter(metricForwardErr(s.Name)),
			fail:     reg.Counter(metricForwardFail(s.Name)),
			failover: reg.Counter(metricFailover(s.Name)),
		}
		r.breakers[i] = newBreaker(cfg.BreakerTripThreshold(), cfg.BreakerCooldown(),
			reg.Counter(metricBreakerOpen(s.Name)), reg.Counter(metricBreakerClose(s.Name)))
	}
	return r
}

// breakerAt exposes a peer's breaker for status reporting (nil for the
// self slot or out-of-range indexes).
func (r *router) breakerAt(idx int) *breaker {
	if idx < 0 || idx >= len(r.breakers) {
		return nil
	}
	return r.breakers[idx]
}

// Route implements rmswire.Router.
func (r *router) Route(req rmswire.Request) (rmswire.Response, bool) {
	switch req.Op {
	case rmswire.OpSubmit:
		cd, ok := r.clientCD[req.Client]
		if !ok {
			// Unknown client: let the local submit path produce the
			// canonical error.
			return rmswire.Response{}, false
		}
		idx := r.ring.OwnerIndex(CDKey(cd))
		if idx == r.selfIdx {
			return rmswire.Response{}, false
		}
		minted := false
		if req.IdemKey == "" {
			// Give keyless submits a forward-scoped key so transport
			// retries inside forward() stay exactly-once at the owner.
			// Client-level retries of keyless submits mint fresh keys
			// and accept double-place risk, exactly as on one daemon.
			req.IdemKey = fmt.Sprintf("fwd-%s-%d-%d", r.self, r.instance, r.fwdSeq.Add(1))
			minted = true
		}
		return r.forward(idx, req, true, minted)
	case rmswire.OpReport:
		idx := int(req.PlacementID >> rmswire.ShardIDShift)
		if idx == r.selfIdx {
			return rmswire.Response{}, false
		}
		if idx >= len(r.shards) {
			return rmswire.Response{
				Status: rmswire.StatusError,
				Error:  fmt.Sprintf("placement %d names shard index %d outside the %d-shard ring", req.PlacementID, idx, len(r.shards)),
			}, true
		}
		return r.forward(idx, req, false, false)
	}
	return rmswire.Response{}, false
}

// forward relays req to the shard at idx.  submit enables failover
// bookkeeping (reports are never failed over: only the minting shard
// can apply an outcome); minted marks a router-generated idempotency
// key, which no later op can ever replay.
func (r *router) forward(idx int, req rmswire.Request, submit, minted bool) (rmswire.Response, bool) {
	peer := r.shards[idx]
	pm := r.peerM[idx]
	req.Forwarded = true

	var prior bool
	if submit && !minted {
		// Record the key as possibly-delivered *before* the first
		// attempt, and learn whether any earlier op already did.  The
		// set is append-only: once a key may have reached a peer,
		// failover for it is forbidden forever (the peer may hold its
		// placement durably even across its own restarts).  Minted
		// keys skip this: they are unique per op, so the within-op
		// `reached` flag below is their entire failover proof and
		// recording them would only leak an entry per keyless submit.
		r.mu.Lock()
		_, prior = r.forwarded[req.IdemKey]
		if !prior {
			r.forwarded[req.IdemKey] = struct{}{}
		}
		r.mu.Unlock()
	}

	began := time.Now()
	br := r.breakers[idx]
	reached := false // any attempt this op may have touched the owner
	var lastErr error
	for attempt := 0; attempt < r.attempts; attempt++ {
		if attempt > 0 {
			// Backoff aborts on fleet shutdown: a closing shard must not
			// sit out the full schedule before its drain can finish.
			select {
			case <-time.After(forwardBackoff(attempt)):
			case <-r.stop:
				lastErr = errShutdown
				attempt = r.attempts // no further attempts
				continue
			}
		}
		if !br.allow() {
			// Open breaker: fail fast without paying the dial timeout.
			// No bytes went toward the peer, so `reached` stays false and
			// eligible submits take the failover path below immediately.
			lastErr = errBreakerOpen
			break
		}
		c, err := r.conn(idx)
		if err != nil {
			br.record(false)
			lastErr = err // dial failure: the owner saw nothing
			continue
		}
		resp, err := c.RoundTrip(req)
		if resp.Status != "" {
			// A server frame came back — relay it verbatim.  Errors and
			// overloads are the owner's to report; the client's retrier
			// already understands all three statuses.
			br.record(true)
			r.forwardNS.Observe(uint64(time.Since(began)))
			if resp.Status == rmswire.StatusOK {
				pm.ok.Inc()
			} else {
				pm.relayErr.Inc()
			}
			if resp.ConnClosing {
				// The owner is closing the forward connection (drain,
				// shed) — drop it so the next forward redials rather
				// than relaying that onto the client's connection.
				r.dropConn(idx, c)
				resp.ConnClosing = false
			}
			return resp, true
		}
		if errors.Is(err, rmswire.ErrClientBroken) {
			// The cached connection died under a previous op; nothing
			// of this request was written.  The peer was never judged —
			// release any probe slot without a transition, redial, retry.
			br.cancel()
			r.dropConn(idx, c)
			lastErr = err
			continue
		}
		// Transport error mid-op: the owner may have executed the
		// request and only the response was lost.  Ambiguous.
		br.record(false)
		reached = true
		lastErr = err
		r.dropConn(idx, c)
	}

	if submit && !reached && !prior {
		// Proven unreachable: every attempt ever made for this key
		// failed before a byte reached the owner.  Serve locally — the
		// placement journals here under the client's idempotency key,
		// and the server consults its local table before routing, so
		// retries replay from here instead of re-forwarding.
		pm.failover.Inc()
		return rmswire.Response{}, false
	}
	pm.fail.Inc()
	return rmswire.Response{
		Status:       rmswire.StatusOverloaded,
		Error:        fmt.Sprintf("forward to shard %s (%s) failed: %v", peer.Name, peer.Addr, lastErr),
		RetryAfterMS: forwardRetryAfter.Milliseconds(),
	}, true
}

// forwardBackoff spaces forward retries: 5ms, 10ms, 20ms, ... capped at
// 50ms.  Dial-refused failures burn through the schedule in tens of
// milliseconds, so failover after a shard crash is near-immediate.
func forwardBackoff(attempt int) time.Duration {
	d := 5 * time.Millisecond << (attempt - 1)
	if d > 50*time.Millisecond {
		d = 50 * time.Millisecond
	}
	return d
}

// conn returns a healthy cached client for the shard at idx, dialing a
// fresh one when the cache is empty, broken, or server-closed.
func (r *router) conn(idx int) (*rmswire.Client, error) {
	r.mu.Lock()
	if c, ok := r.conns[idx]; ok {
		if !c.Broken() && !c.Closing() {
			r.mu.Unlock()
			return c, nil
		}
		delete(r.conns, idx)
		defer c.Close()
	}
	r.mu.Unlock()

	nc, err := rmswire.DialTimeout(r.shards[idx].Addr, r.dialTimeout)
	if err != nil {
		return nil, err
	}
	nc.Timeout = r.opTimeout
	r.mu.Lock()
	if cur, ok := r.conns[idx]; ok && !cur.Broken() && !cur.Closing() {
		// Lost a dial race; use the connection that won.
		r.mu.Unlock()
		_ = nc.Close()
		return cur, nil
	}
	r.conns[idx] = nc
	r.mu.Unlock()
	return nc, nil
}

// dropConn evicts c from the cache (if still cached) and closes it.
func (r *router) dropConn(idx int, c *rmswire.Client) {
	r.mu.Lock()
	if r.conns[idx] == c {
		delete(r.conns, idx)
	}
	r.mu.Unlock()
	_ = c.Close()
}

// close releases every cached peer connection.
func (r *router) close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for idx, c := range r.conns {
		_ = c.Close()
		delete(r.conns, idx)
	}
}
