package fleet

import (
	"fmt"
	"sync"
	"time"

	"gridtrust/internal/grid"
	"gridtrust/internal/metrics"
	"gridtrust/internal/rmswire"
	"gridtrust/internal/trustwire"
)

// Fleet metric names.  Everything the fleet layer measures is prefixed
// "fleet_" so gridctl can group it into its own section; per-peer
// counters embed the peer's shard name.
const (
	// MetricForwardNS is the entry-shard service latency of forwarded
	// requests (dial + remote execution + relay), in nanoseconds.
	MetricForwardNS = "fleet_forward_ns"
)

func metricForwardOK(peer string) string   { return "fleet_forward_ok_" + peer + "_total" }
func metricForwardErr(peer string) string  { return "fleet_forward_relay_err_" + peer + "_total" }
func metricForwardFail(peer string) string { return "fleet_forward_fail_" + peer + "_total" }
func metricFailover(peer string) string    { return "fleet_forward_failover_" + peer + "_total" }
func metricGossipSync(peer string) string  { return "fleet_gossip_sync_" + peer + "_total" }
func metricGossipErr(peer string) string   { return "fleet_gossip_err_" + peer + "_total" }
func metricBreakerOpen(peer string) string { return "fleet_breaker_open_" + peer + "_total" }
func metricBreakerClose(peer string) string {
	return "fleet_breaker_close_" + peer + "_total"
}

// Claims is the bounded-staleness view of every peer's trust table.
// Remote tables arrive over the trustwire replica protocol and enter
// scheduling only through FuseOTL: the decision-time offered trust
// level is min(local table, every fresh peer claim) — the same
// conservative max-fusion as the trust zoo's modelView, lifted from
// trust costs to levels (a lower level is a higher cost).  Local direct
// experience therefore always wins in the direction that matters: no
// peer's optimism can raise trust above what this shard has observed,
// while a peer that watched a resource domain misbehave pulls the fused
// level down even before local experience catches up.
//
// Claims are advisory overlays, never state: they are not journalled,
// they never touch the authoritative table, and when gossip from a peer
// stops for longer than the staleness bound its claims silently drop
// out of fusion (stale trust is worse than no trust — the
// recommendation-purging argument).
type Claims struct {
	bound   time.Duration
	timeout time.Duration    // per-round gossip deadline (0 = none)
	now     func() time.Time // injectable for staleness tests
	peers   []*peerState
}

// peerState is one peer's gossip state.  The replica connection is
// owned by the gossip goroutine; mu guards the claim view read by the
// scheduler (FuseOTL) and by status reporting.
type peerState struct {
	cfg ShardConfig

	mu       sync.Mutex
	table    trustwire.ReadOnlyTable // last applied claim set (nil before first sync)
	version  uint64
	entries  int
	lastSync time.Time // zero = never synced
	syncs    uint64
	errs     uint64

	rep *trustwire.Replica // gossip-goroutine local

	syncC *metrics.Counter
	errC  *metrics.Counter
}

// newClaims builds the claim state for the given peers (self excluded).
// timeout bounds one gossip round trip (dial + sync): a black-holed
// peer then costs at most one deadline per tick instead of wedging its
// gossip goroutine, and drops out of fusion once the staleness bound
// passes.
func newClaims(peers []ShardConfig, bound, timeout time.Duration, reg *metrics.Registry) *Claims {
	c := &Claims{bound: bound, timeout: timeout, now: time.Now}
	for _, p := range peers {
		c.peers = append(c.peers, &peerState{
			cfg:   p,
			syncC: reg.Counter(metricGossipSync(p.Name)),
			errC:  reg.Counter(metricGossipErr(p.Name)),
		})
	}
	return c
}

// FuseOTL implements core.OTLFuser: fold every fresh peer claim into
// the local OTL, conservatively.  A peer with no entry for the triple,
// no sync yet, or a last sync older than the staleness bound
// contributes nothing.
func (c *Claims) FuseOTL(cd, rd grid.DomainID, toa grid.ToA, local grid.TrustLevel) grid.TrustLevel {
	fused := local
	now := c.now()
	for _, p := range c.peers {
		p.mu.Lock()
		table, last := p.table, p.lastSync
		p.mu.Unlock()
		if table == nil || last.IsZero() || now.Sub(last) > c.bound {
			continue
		}
		lvl, err := table.OTL(cd, rd, toa)
		if err != nil {
			continue
		}
		if lvl < fused {
			fused = lvl
		}
	}
	return fused
}

// run is one peer's gossip loop: poll the peer's trustwire server every
// interval, swap the claim view on success, and on any error drop the
// connection so the next round redials.  A redialled replica starts
// from version 0 and cold-syncs a full snapshot — that *is* the
// anti-entropy path: whatever state diverged (missed deltas, a peer
// restart that reset its version counter) is healed by the next
// successful full sync.
func (c *Claims) run(p *peerState, interval time.Duration, stop <-chan struct{}) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	defer func() {
		if p.rep != nil {
			_ = p.rep.Close()
			p.rep = nil
		}
	}()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			c.syncPeer(p)
		}
	}
}

// syncPeer performs one gossip round against p.
func (c *Claims) syncPeer(p *peerState) {
	if p.rep == nil {
		rep, err := trustwire.DialTimeout(p.cfg.TrustAddr, c.timeout)
		if err != nil {
			c.recordErr(p)
			return
		}
		p.rep = rep
	}
	if _, err := p.rep.Sync(); err != nil {
		c.recordErr(p)
		_ = p.rep.Close()
		p.rep = nil
		return
	}
	table, version := p.rep.Table(), p.rep.Version()
	p.mu.Lock()
	p.table = table
	p.version = version
	p.entries = table.Len()
	p.lastSync = c.now()
	p.syncs++
	p.mu.Unlock()
	p.syncC.Inc()
}

func (c *Claims) recordErr(p *peerState) {
	p.mu.Lock()
	p.errs++
	p.mu.Unlock()
	p.errC.Inc()
}

// peerInfos snapshots every peer's gossip state for the fleet op.
func (c *Claims) peerInfos() []rmswire.FleetPeerInfo {
	now := c.now()
	out := make([]rmswire.FleetPeerInfo, 0, len(c.peers))
	for _, p := range c.peers {
		p.mu.Lock()
		info := rmswire.FleetPeerInfo{
			Name:       p.cfg.Name,
			Addr:       p.cfg.Addr,
			TrustAddr:  p.cfg.TrustAddr,
			Version:    p.version,
			Entries:    p.entries,
			AgeMS:      -1,
			Stale:      true,
			Syncs:      p.syncs,
			SyncErrors: p.errs,
		}
		if !p.lastSync.IsZero() {
			age := now.Sub(p.lastSync)
			info.AgeMS = age.Milliseconds()
			info.Stale = age > c.bound
		}
		p.mu.Unlock()
		out = append(out, info)
	}
	return out
}

// String renders a one-line gossip summary, used in logs.
func (c *Claims) String() string {
	return fmt.Sprintf("claims over %d peer(s), staleness bound %v", len(c.peers), c.bound)
}
