package trust

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Score bounds on the paper's numeric trust scale (levels A=1 … F=6).
const (
	MinScore = 1.0
	MaxScore = 6.0
)

// clampScore confines a score to the paper's scale.
func clampScore(s float64) float64 {
	switch {
	case s < MinScore:
		return MinScore
	case s > MaxScore:
		return MaxScore
	default:
		return s
	}
}

// Config parameterises an Engine.
type Config struct {
	// Alpha and Beta weight direct trust and reputation in Γ.  "If the
	// trustworthiness of y, as far as x is concerned, is based more on
	// direct relationship with x than the reputation of y, α will be
	// larger than β" (Section 2.2).  They must be non-negative and sum
	// to 1.
	Alpha, Beta float64

	// Decay is the Υ function.  Nil defaults to NoDecay.
	Decay DecayFunc

	// InitialScore seeds unknown relationships; defaults to MinScore
	// (a stranger gets the lowest trust, the conservative choice).
	InitialScore float64

	// UpdateBatch is the number of observed transactions that constitute
	// a "significant amount of transactional data" (Section 3.1) before
	// the stored TL is revised.  Defaults to 1 (immediate updates).
	UpdateBatch int

	// Smoothing is the EWMA weight given to the new evidence when a
	// batch commits: new = (1−s)·old + s·batchMean.  Must be in (0,1].
	// Defaults to 0.3, so trust is "a slow varying attribute".
	Smoothing float64

	// PurgeBelow excludes recommenders whose trust factor R(z,y) has
	// fallen below this threshold from Ω entirely, instead of letting
	// their floor-anchored contribution drag the average — the "purging
	// of untrustworthy recommendations" defense.  Must be in [0,1];
	// 0 (the default) never purges, preserving the original semantics.
	PurgeBelow float64
}

// withDefaults fills zero-valued fields and validates the config.
func (c Config) withDefaults() (Config, error) {
	if c.Decay == nil {
		c.Decay = NoDecay()
	}
	if c.InitialScore == 0 {
		c.InitialScore = MinScore
	}
	if c.UpdateBatch == 0 {
		c.UpdateBatch = 1
	}
	if c.Smoothing == 0 {
		c.Smoothing = 0.3
	}
	if c.Alpha < 0 || c.Beta < 0 {
		return c, fmt.Errorf("trust: negative weights α=%g β=%g", c.Alpha, c.Beta)
	}
	if math.Abs(c.Alpha+c.Beta-1) > 1e-9 {
		return c, fmt.Errorf("trust: α+β must equal 1, got %g", c.Alpha+c.Beta)
	}
	if c.InitialScore < MinScore || c.InitialScore > MaxScore {
		return c, fmt.Errorf("trust: initial score %g outside [%g,%g]", c.InitialScore, MinScore, MaxScore)
	}
	if c.UpdateBatch < 1 {
		return c, fmt.Errorf("trust: update batch %d must be >= 1", c.UpdateBatch)
	}
	if c.Smoothing <= 0 || c.Smoothing > 1 {
		return c, fmt.Errorf("trust: smoothing %g outside (0,1]", c.Smoothing)
	}
	if c.PurgeBelow < 0 || c.PurgeBelow > 1 {
		return c, fmt.Errorf("trust: purge threshold %g outside [0,1]", c.PurgeBelow)
	}
	return c, nil
}

// Engine evolves and serves trust values.  It is safe for concurrent use.
//
// Storage layout.  The first implementation kept every table in Go maps
// keyed by entity strings — (from,to,ctx) → *relationship, [2]EntityID →
// factor — and Reputation walked the entire relationship map, allocated a
// contribution slice and sorted it on every call.  This engine interns
// each EntityID and Context into a dense integer index exactly once and
// stores relationships in flat parallel slices (SoA) addressed by those
// indices:
//
//   - out[x] is x's outgoing adjacency, sorted by (to, ctx) index — a
//     binary search replaces the map lookup in Observe/Direct;
//   - in[y] is y's incoming adjacency, sorted by the recommender's
//     EntityID *string* (then ctx).  Reputation's contract is that
//     contributions sum in recommender string order (float addition is
//     not associative, so summation order defines the bits of Ω); the
//     old engine sorted on every call, this one keeps the adjacency
//     presorted and just scans, making Ω an allocation-free linear pass
//     over exactly the relationships that matter;
//   - recommender factors and alliances are per-entity sorted index
//     lists, looked up by binary search.
//
// Steady-state Observe and Trust therefore allocate nothing and touch no
// map beyond the O(1) intern lookups at the API boundary (EntityID and
// Context are strings; the intern read is how a string becomes an index).
// Scores are bit-identical to the reference implementation in
// reference_test.go, which engine_equiv_test.go and FuzzEngineEquivalence
// enforce.
type Engine struct {
	cfg Config
	// noDecay marks the default Υ (Config.Decay == nil): decay is then
	// the constant 1 and its per-relationship indirect call + output
	// validation are amortised away.  An explicitly supplied DecayFunc —
	// even NoDecay() — is still called per relationship, because the
	// engine cannot inspect it.
	noDecay bool

	mu sync.RWMutex

	// Entity and context interning: index maps are consulted once per
	// API call; everything below works on dense int32 indices.
	entIdx map[EntityID]int32
	ents   []EntityID
	ctxIdx map[Context]int32
	ctxs   []Context

	// Relationship records in flat parallel slices, addressed by the
	// rel index stored in the adjacency edges.  Freed slots (Prune) are
	// recycled through relFree.
	relFrom    []int32
	relTo      []int32
	relCtx     []int32
	relScore   []float64
	relLastTx  []float64
	relPendSum []float64
	relPendCnt []int32
	relLive    []bool
	relFree    []int32

	out  [][]edge    // per from-entity, sorted by (to, ctx) index
	in   [][]edge    // per to-entity, sorted by (from string, ctx)
	rec  [][]recEdge // per recommender, sorted by about index
	ally [][]int32   // per entity, sorted ally index list
}

// edge is one adjacency entry: the far endpoint, the context and the
// relationship record it names.
type edge struct {
	peer int32 // out: the trustee; in: the recommender
	ctx  int32
	rel  int32
}

// recEdge is one explicit R(z,y) override.
type recEdge struct {
	about  int32
	factor float64
}

// NewEngine builds an Engine from cfg.
func NewEngine(cfg Config) (*Engine, error) {
	noDecay := cfg.Decay == nil
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Engine{
		cfg:     cfg,
		noDecay: noDecay,
		entIdx:  make(map[EntityID]int32),
		ctxIdx:  make(map[Context]int32),
	}, nil
}

// intern returns the dense index of id, assigning one on first sight.
// Write paths only: read paths use the index maps directly so queries
// about unknown entities do not grow the tables.
func (e *Engine) intern(id EntityID) int32 {
	if i, ok := e.entIdx[id]; ok {
		return i
	}
	i := int32(len(e.ents))
	e.entIdx[id] = i
	e.ents = append(e.ents, id)
	e.out = append(e.out, nil)
	e.in = append(e.in, nil)
	e.rec = append(e.rec, nil)
	e.ally = append(e.ally, nil)
	return i
}

// internCtx is intern for contexts.
func (e *Engine) internCtx(c Context) int32 {
	if i, ok := e.ctxIdx[c]; ok {
		return i
	}
	i := int32(len(e.ctxs))
	e.ctxIdx[c] = i
	e.ctxs = append(e.ctxs, c)
	return i
}

// findRel locates the relationship (xi → yi, ci) by binary search over
// xi's outgoing adjacency.
func (e *Engine) findRel(xi, yi, ci int32) (int32, bool) {
	adj := e.out[xi]
	lo := sort.Search(len(adj), func(i int) bool {
		if adj[i].peer != yi {
			return adj[i].peer > yi
		}
		return adj[i].ctx >= ci
	})
	if lo < len(adj) && adj[lo].peer == yi && adj[lo].ctx == ci {
		return adj[lo].rel, true
	}
	return 0, false
}

// newRel creates a relationship record and links it into both adjacency
// lists.  The caller must hold the write lock and must have checked the
// relationship does not already exist.
func (e *Engine) newRel(xi, yi, ci int32, score, lastTx float64) int32 {
	var ri int32
	if n := len(e.relFree); n > 0 {
		ri = e.relFree[n-1]
		e.relFree = e.relFree[:n-1]
		e.relFrom[ri], e.relTo[ri], e.relCtx[ri] = xi, yi, ci
		e.relScore[ri], e.relLastTx[ri] = score, lastTx
		e.relPendSum[ri], e.relPendCnt[ri] = 0, 0
		e.relLive[ri] = true
	} else {
		ri = int32(len(e.relFrom))
		e.relFrom = append(e.relFrom, xi)
		e.relTo = append(e.relTo, yi)
		e.relCtx = append(e.relCtx, ci)
		e.relScore = append(e.relScore, score)
		e.relLastTx = append(e.relLastTx, lastTx)
		e.relPendSum = append(e.relPendSum, 0)
		e.relPendCnt = append(e.relPendCnt, 0)
		e.relLive = append(e.relLive, true)
	}

	// Outgoing adjacency: ordered by (to, ctx) index for binary search.
	adj := e.out[xi]
	pos := sort.Search(len(adj), func(i int) bool {
		if adj[i].peer != yi {
			return adj[i].peer > yi
		}
		return adj[i].ctx >= ci
	})
	adj = append(adj, edge{})
	copy(adj[pos+1:], adj[pos:])
	adj[pos] = edge{peer: yi, ctx: ci, rel: ri}
	e.out[xi] = adj

	// Incoming adjacency: ordered by the recommender's EntityID string
	// (then ctx) so Reputation's scan sums contributions in exactly the
	// order the reference implementation sorts them into.
	from := e.ents[xi]
	inc := e.in[yi]
	pos = sort.Search(len(inc), func(i int) bool {
		if p := e.ents[inc[i].peer]; p != from {
			return p > from
		}
		return inc[i].ctx >= ci
	})
	inc = append(inc, edge{})
	copy(inc[pos+1:], inc[pos:])
	inc[pos] = edge{peer: xi, ctx: ci, rel: ri}
	e.in[yi] = inc
	return ri
}

// dropRel unlinks and frees a relationship record.  Caller holds the
// write lock.
func (e *Engine) dropRel(ri int32) {
	xi, yi, ci := e.relFrom[ri], e.relTo[ri], e.relCtx[ri]
	adj := e.out[xi]
	for i := range adj {
		if adj[i].rel == ri {
			e.out[xi] = append(adj[:i], adj[i+1:]...)
			break
		}
	}
	inc := e.in[yi]
	for i := range inc {
		if inc[i].rel == ri {
			e.in[yi] = append(inc[:i], inc[i+1:]...)
			break
		}
	}
	_ = ci
	e.relLive[ri] = false
	e.relFree = append(e.relFree, ri)
}

// decay evaluates Υ(age, c), amortising the call away for the default
// no-decay configuration.
func (e *Engine) decay(age float64, c Context) (float64, error) {
	if e.noDecay {
		return 1, nil
	}
	d := e.cfg.Decay(age, c)
	if err := validateDecayOutput(d); err != nil {
		return 0, err
	}
	return d, nil
}

// SetDirect installs a direct-trust table entry, e.g. from configuration or
// an out-of-band agreement.  score must be on [1,6].
func (e *Engine) SetDirect(x, y EntityID, c Context, score, now float64) error {
	if score < MinScore || score > MaxScore {
		return fmt.Errorf("trust: score %g outside [%g,%g]", score, MinScore, MaxScore)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	xi, yi, ci := e.intern(x), e.intern(y), e.internCtx(c)
	if ri, ok := e.findRel(xi, yi, ci); ok {
		e.relScore[ri], e.relLastTx[ri] = score, now
		e.relPendSum[ri], e.relPendCnt[ri] = 0, 0
		return nil
	}
	e.newRel(xi, yi, ci, score, now)
	return nil
}

// DeclareAlliance records that a and b are allied.  Alliances reduce the
// recommender trust factor: "R … will have a higher value if the
// recommender does not have an alliance with the target entity"
// (Section 2.2).
func (e *Engine) DeclareAlliance(a, b EntityID) {
	e.mu.Lock()
	defer e.mu.Unlock()
	ai, bi := e.intern(a), e.intern(b)
	insertAlly(&e.ally[ai], bi)
	insertAlly(&e.ally[bi], ai)
}

// insertAlly adds idx to a sorted ally list, ignoring duplicates.
func insertAlly(list *[]int32, idx int32) {
	l := *list
	pos := sort.Search(len(l), func(i int) bool { return l[i] >= idx })
	if pos < len(l) && l[pos] == idx {
		return
	}
	l = append(l, 0)
	copy(l[pos+1:], l[pos:])
	l[pos] = idx
	*list = l
}

// allied reports an alliance between interned entities.
func (e *Engine) allied(ai, bi int32) bool {
	l := e.ally[ai]
	pos := sort.Search(len(l), func(i int) bool { return l[i] >= bi })
	return pos < len(l) && l[pos] == bi
}

// Allied reports whether a and b have a declared alliance.
func (e *Engine) Allied(a, b EntityID) bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	ai, ok := e.entIdx[a]
	if !ok {
		return false
	}
	bi, ok := e.entIdx[b]
	if !ok {
		return false
	}
	return e.allied(ai, bi)
}

// SetRecommenderFactor overrides the learned R(z,y) in [0,1].  "R is an
// internal knowledge that each entity has and is learned based on actual
// outcomes" (Section 2.2); tests and simulations can inject it directly.
func (e *Engine) SetRecommenderFactor(z, y EntityID, r float64) error {
	if r < 0 || r > 1 {
		return fmt.Errorf("trust: recommender factor %g outside [0,1]", r)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	zi, yi := e.intern(z), e.intern(y)
	l := e.rec[zi]
	pos := sort.Search(len(l), func(i int) bool { return l[i].about >= yi })
	if pos < len(l) && l[pos].about == yi {
		l[pos].factor = r
		return nil
	}
	l = append(l, recEdge{})
	copy(l[pos+1:], l[pos:])
	l[pos] = recEdge{about: yi, factor: r}
	e.rec[zi] = l
	return nil
}

// recommenderFactor returns R(z,y) by index: an explicit override if
// present, else a low factor (0.1) for allies and full weight (1.0)
// otherwise.
func (e *Engine) recommenderFactor(zi, yi int32) float64 {
	l := e.rec[zi]
	pos := sort.Search(len(l), func(i int) bool { return l[i].about >= yi })
	if pos < len(l) && l[pos].about == yi {
		return l[pos].factor
	}
	if e.allied(zi, yi) {
		return 0.1
	}
	return 1.0
}

// Observe records the outcome of one transaction between x and y in
// context c at time now.  outcome is a behaviour score on [1,6]: how
// trustworthy y proved to be.  The stored TL only moves once UpdateBatch
// observations have accumulated — "a value in the trust level table is
// modified by a new trust level value that is computed based on a
// significant amount of transactional data" (Section 3.1).
// It reports whether the stored trust level changed.
func (e *Engine) Observe(x, y EntityID, c Context, outcome, now float64) (bool, error) {
	if outcome < MinScore || outcome > MaxScore {
		return false, fmt.Errorf("trust: outcome %g outside [%g,%g]", outcome, MinScore, MaxScore)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	xi, yi, ci := e.intern(x), e.intern(y), e.internCtx(c)
	ri, ok := e.findRel(xi, yi, ci)
	if !ok {
		ri = e.newRel(xi, yi, ci, e.cfg.InitialScore, now)
	}
	e.relPendSum[ri] += outcome
	e.relPendCnt[ri]++
	e.relLastTx[ri] = now
	if int(e.relPendCnt[ri]) < e.cfg.UpdateBatch {
		return false, nil
	}
	batchMean := e.relPendSum[ri] / float64(e.relPendCnt[ri])
	e.relPendSum[ri], e.relPendCnt[ri] = 0, 0
	s := e.cfg.Smoothing
	e.relScore[ri] = clampScore((1-s)*e.relScore[ri] + s*batchMean)
	return true, nil
}

// Direct computes Θ(x,y,t,c) = DTT(x,y,c) · Υ(t−t_xy, c).  Unknown
// relationships return the configured initial score fully decayed to the
// conservative floor (i.e. the initial score with Υ evaluated at +inf is
// not defined, so we simply return the initial score — a stranger's trust
// does not decay because there is nothing to decay from).
func (e *Engine) Direct(x, y EntityID, c Context, now float64) (float64, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	xi, okx := e.entIdx[x]
	yi, oky := e.entIdx[y]
	ci, okc := e.ctxIdx[c]
	if !okx || !oky || !okc {
		return e.cfg.InitialScore, nil
	}
	return e.directIdx(xi, yi, ci, c, now)
}

func (e *Engine) directIdx(xi, yi, ci int32, c Context, now float64) (float64, error) {
	ri, ok := e.findRel(xi, yi, ci)
	if !ok {
		return e.cfg.InitialScore, nil
	}
	d, err := e.decay(now-e.relLastTx[ri], c)
	if err != nil {
		return 0, err
	}
	// Decay pulls the remembered score toward the scale floor rather than
	// to zero, keeping Θ on [1,6]: Θ = 1 + (score−1)·Υ.
	return MinScore + (e.relScore[ri]-MinScore)*d, nil
}

// Reputation computes Ω(y,t,c): the average over recommenders z≠x of
// RTT(z,y,c)·R(z,y)·Υ(t−t_zy,c).  Entities with no recorded relationship
// to y do not recommend.  If nobody can recommend, the configured initial
// score is returned.
func (e *Engine) Reputation(x, y EntityID, c Context, now float64) (float64, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	yi, oky := e.entIdx[y]
	ci, okc := e.ctxIdx[c]
	if !oky || !okc {
		return e.cfg.InitialScore, nil
	}
	xi := int32(-1)
	if i, ok := e.entIdx[x]; ok {
		xi = i
	}
	return e.reputationIdx(xi, yi, ci, c, now)
}

// reputationIdx scans y's incoming adjacency.  The list is presorted by
// recommender string, so the sum accumulates in exactly the order the
// reference implementation establishes by sorting per call — float
// addition is not associative, and Ω's bits are part of the engine's
// determinism contract.
func (e *Engine) reputationIdx(xi, yi, ci int32, c Context, now float64) (float64, error) {
	var sum float64
	n := 0
	for _, ed := range e.in[yi] {
		if ed.ctx != ci || ed.peer == xi || ed.peer == yi {
			continue
		}
		d, err := e.decay(now-e.relLastTx[ed.rel], c)
		if err != nil {
			return 0, err
		}
		r := e.recommenderFactor(ed.peer, yi)
		if r < e.cfg.PurgeBelow {
			// Purged: a recommender distrusted this far is not averaged
			// in at the floor, it is ignored outright.
			continue
		}
		// Like Θ, each recommendation is anchored at the scale floor:
		// a distrusted or stale recommendation contributes the floor,
		// not an off-scale zero.
		sum += MinScore + (e.relScore[ed.rel]-MinScore)*d*r
		n++
	}
	if n == 0 {
		return e.cfg.InitialScore, nil
	}
	return sum / float64(n), nil
}

// Recommendation returns the decayed trust level recommender z would
// contribute about y in context c — RTT(z,y,c)·Υ anchored at the scale
// floor, before any R(x,z) weighting — and whether z has a recorded
// relationship with y at all.  It is the raw claim an entity audits when
// learning its recommender trust factors: compare what z says against
// what direct experience shows, and weight z accordingly.
func (e *Engine) Recommendation(z, y EntityID, c Context, now float64) (float64, bool, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	zi, okz := e.entIdx[z]
	yi, oky := e.entIdx[y]
	ci, okc := e.ctxIdx[c]
	if !okz || !oky || !okc {
		return 0, false, nil
	}
	ri, ok := e.findRel(zi, yi, ci)
	if !ok {
		return 0, false, nil
	}
	d, err := e.decay(now-e.relLastTx[ri], c)
	if err != nil {
		return 0, false, err
	}
	return MinScore + (e.relScore[ri]-MinScore)*d, true, nil
}

// Trust computes the eventual trust Γ(x,y,t,c) = α·Θ + β·Ω, clamped to the
// paper's [1,6] scale.
func (e *Engine) Trust(x, y EntityID, c Context, now float64) (float64, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	yi, oky := e.entIdx[y]
	ci, okc := e.ctxIdx[c]
	xi, okx := e.entIdx[x]
	theta, omega := e.cfg.InitialScore, e.cfg.InitialScore
	if oky && okc {
		var err error
		if okx {
			theta, err = e.directIdx(xi, yi, ci, c, now)
			if err != nil {
				return 0, err
			}
		}
		if !okx {
			xi = -1
		}
		omega, err = e.reputationIdx(xi, yi, ci, c, now)
		if err != nil {
			return 0, err
		}
	}
	return clampScore(e.cfg.Alpha*theta + e.cfg.Beta*omega), nil
}

// Entities returns all entities the engine has seen, sorted for
// determinism.
func (e *Engine) Entities() []EntityID {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]EntityID, len(e.ents))
	copy(out, e.ents)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Relationships returns the number of stored (truster, trustee, context)
// records.
func (e *Engine) Relationships() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.relFrom) - len(e.relFree)
}

// Prune removes relationships whose last transaction is older than
// `before` and whose decayed contribution has fallen to the scale floor —
// the garbage collection a long-running trust fabric needs ("managing ...
// trust in a large-scale distributed system", Section 7).  A relationship
// with pending (uncommitted) observations is never pruned.  It returns the
// number of records removed.
func (e *Engine) Prune(before float64) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	removed := 0
	for ri := range e.relLive {
		if !e.relLive[ri] || e.relPendCnt[ri] > 0 || e.relLastTx[ri] >= before {
			continue
		}
		e.dropRel(int32(ri))
		removed++
	}
	return removed
}
