package trust

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Score bounds on the paper's numeric trust scale (levels A=1 … F=6).
const (
	MinScore = 1.0
	MaxScore = 6.0
)

// clampScore confines a score to the paper's scale.
func clampScore(s float64) float64 {
	switch {
	case s < MinScore:
		return MinScore
	case s > MaxScore:
		return MaxScore
	default:
		return s
	}
}

// Config parameterises an Engine.
type Config struct {
	// Alpha and Beta weight direct trust and reputation in Γ.  "If the
	// trustworthiness of y, as far as x is concerned, is based more on
	// direct relationship with x than the reputation of y, α will be
	// larger than β" (Section 2.2).  They must be non-negative and sum
	// to 1.
	Alpha, Beta float64

	// Decay is the Υ function.  Nil defaults to NoDecay.
	Decay DecayFunc

	// InitialScore seeds unknown relationships; defaults to MinScore
	// (a stranger gets the lowest trust, the conservative choice).
	InitialScore float64

	// UpdateBatch is the number of observed transactions that constitute
	// a "significant amount of transactional data" (Section 3.1) before
	// the stored TL is revised.  Defaults to 1 (immediate updates).
	UpdateBatch int

	// Smoothing is the EWMA weight given to the new evidence when a
	// batch commits: new = (1−s)·old + s·batchMean.  Must be in (0,1].
	// Defaults to 0.3, so trust is "a slow varying attribute".
	Smoothing float64

	// PurgeBelow excludes recommenders whose trust factor R(z,y) has
	// fallen below this threshold from Ω entirely, instead of letting
	// their floor-anchored contribution drag the average — the "purging
	// of untrustworthy recommendations" defense.  Must be in [0,1];
	// 0 (the default) never purges, preserving the original semantics.
	PurgeBelow float64
}

// withDefaults fills zero-valued fields and validates the config.
func (c Config) withDefaults() (Config, error) {
	if c.Decay == nil {
		c.Decay = NoDecay()
	}
	if c.InitialScore == 0 {
		c.InitialScore = MinScore
	}
	if c.UpdateBatch == 0 {
		c.UpdateBatch = 1
	}
	if c.Smoothing == 0 {
		c.Smoothing = 0.3
	}
	if c.Alpha < 0 || c.Beta < 0 {
		return c, fmt.Errorf("trust: negative weights α=%g β=%g", c.Alpha, c.Beta)
	}
	if math.Abs(c.Alpha+c.Beta-1) > 1e-9 {
		return c, fmt.Errorf("trust: α+β must equal 1, got %g", c.Alpha+c.Beta)
	}
	if c.InitialScore < MinScore || c.InitialScore > MaxScore {
		return c, fmt.Errorf("trust: initial score %g outside [%g,%g]", c.InitialScore, MinScore, MaxScore)
	}
	if c.UpdateBatch < 1 {
		return c, fmt.Errorf("trust: update batch %d must be >= 1", c.UpdateBatch)
	}
	if c.Smoothing <= 0 || c.Smoothing > 1 {
		return c, fmt.Errorf("trust: smoothing %g outside (0,1]", c.Smoothing)
	}
	if c.PurgeBelow < 0 || c.PurgeBelow > 1 {
		return c, fmt.Errorf("trust: purge threshold %g outside [0,1]", c.PurgeBelow)
	}
	return c, nil
}

// relationship is one (truster, trustee, context) record.  "In practical
// systems, entities will use the same information to evaluate direct
// relationships and give recommendations, i.e., RTT and DTT will refer to
// the same table" (Section 2.2) — hence a single record type backs both.
type relationship struct {
	score  float64 // current TL on [1,6]
	lastTx float64 // t_xy, time of last transaction

	// pending accumulates outcome evidence until a batch commits.
	pendingSum   float64
	pendingCount int
}

type relKey struct {
	from EntityID
	to   EntityID
	ctx  Context
}

// Engine evolves and serves trust values.  It is safe for concurrent use.
type Engine struct {
	cfg Config

	mu    sync.RWMutex
	rels  map[relKey]*relationship
	rec   map[[2]EntityID]float64 // R(z,y) recommender trust factors
	ally  map[[2]EntityID]bool    // alliance(z,y), symmetric
	peers map[EntityID]bool       // all entities ever seen
}

// NewEngine builds an Engine from cfg.
func NewEngine(cfg Config) (*Engine, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Engine{
		cfg:   cfg,
		rels:  make(map[relKey]*relationship),
		rec:   make(map[[2]EntityID]float64),
		ally:  make(map[[2]EntityID]bool),
		peers: make(map[EntityID]bool),
	}, nil
}

// SetDirect installs a direct-trust table entry, e.g. from configuration or
// an out-of-band agreement.  score must be on [1,6].
func (e *Engine) SetDirect(x, y EntityID, c Context, score, now float64) error {
	if score < MinScore || score > MaxScore {
		return fmt.Errorf("trust: score %g outside [%g,%g]", score, MinScore, MaxScore)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.peers[x], e.peers[y] = true, true
	e.rels[relKey{x, y, c}] = &relationship{score: score, lastTx: now}
	return nil
}

// DeclareAlliance records that a and b are allied.  Alliances reduce the
// recommender trust factor: "R … will have a higher value if the
// recommender does not have an alliance with the target entity"
// (Section 2.2).
func (e *Engine) DeclareAlliance(a, b EntityID) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.peers[a], e.peers[b] = true, true
	e.ally[[2]EntityID{a, b}] = true
	e.ally[[2]EntityID{b, a}] = true
}

// Allied reports whether a and b have a declared alliance.
func (e *Engine) Allied(a, b EntityID) bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.ally[[2]EntityID{a, b}]
}

// SetRecommenderFactor overrides the learned R(z,y) in [0,1].  "R is an
// internal knowledge that each entity has and is learned based on actual
// outcomes" (Section 2.2); tests and simulations can inject it directly.
func (e *Engine) SetRecommenderFactor(z, y EntityID, r float64) error {
	if r < 0 || r > 1 {
		return fmt.Errorf("trust: recommender factor %g outside [0,1]", r)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.peers[z], e.peers[y] = true, true
	e.rec[[2]EntityID{z, y}] = r
	return nil
}

// recommenderFactor returns R(z,y): an explicit override if present, else
// a low factor (0.1) for allies and full weight (1.0) otherwise.
func (e *Engine) recommenderFactor(z, y EntityID) float64 {
	if r, ok := e.rec[[2]EntityID{z, y}]; ok {
		return r
	}
	if e.ally[[2]EntityID{z, y}] {
		return 0.1
	}
	return 1.0
}

// Observe records the outcome of one transaction between x and y in
// context c at time now.  outcome is a behaviour score on [1,6]: how
// trustworthy y proved to be.  The stored TL only moves once UpdateBatch
// observations have accumulated — "a value in the trust level table is
// modified by a new trust level value that is computed based on a
// significant amount of transactional data" (Section 3.1).
// It reports whether the stored trust level changed.
func (e *Engine) Observe(x, y EntityID, c Context, outcome, now float64) (bool, error) {
	if outcome < MinScore || outcome > MaxScore {
		return false, fmt.Errorf("trust: outcome %g outside [%g,%g]", outcome, MinScore, MaxScore)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.peers[x], e.peers[y] = true, true
	k := relKey{x, y, c}
	rel, ok := e.rels[k]
	if !ok {
		rel = &relationship{score: e.cfg.InitialScore, lastTx: now}
		e.rels[k] = rel
	}
	rel.pendingSum += outcome
	rel.pendingCount++
	rel.lastTx = now
	if rel.pendingCount < e.cfg.UpdateBatch {
		return false, nil
	}
	batchMean := rel.pendingSum / float64(rel.pendingCount)
	rel.pendingSum, rel.pendingCount = 0, 0
	s := e.cfg.Smoothing
	rel.score = clampScore((1-s)*rel.score + s*batchMean)
	return true, nil
}

// Direct computes Θ(x,y,t,c) = DTT(x,y,c) · Υ(t−t_xy, c).  Unknown
// relationships return the configured initial score fully decayed to the
// conservative floor (i.e. the initial score with Υ evaluated at +inf is
// not defined, so we simply return the initial score — a stranger's trust
// does not decay because there is nothing to decay from).
func (e *Engine) Direct(x, y EntityID, c Context, now float64) (float64, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.directLocked(x, y, c, now)
}

func (e *Engine) directLocked(x, y EntityID, c Context, now float64) (float64, error) {
	rel, ok := e.rels[relKey{x, y, c}]
	if !ok {
		return e.cfg.InitialScore, nil
	}
	d := e.cfg.Decay(now-rel.lastTx, c)
	if err := validateDecayOutput(d); err != nil {
		return 0, err
	}
	// Decay pulls the remembered score toward the scale floor rather than
	// to zero, keeping Θ on [1,6]: Θ = 1 + (score−1)·Υ.
	return MinScore + (rel.score-MinScore)*d, nil
}

// Reputation computes Ω(y,t,c): the average over recommenders z≠x of
// RTT(z,y,c)·R(z,y)·Υ(t−t_zy,c).  Entities with no recorded relationship
// to y do not recommend.  If nobody can recommend, the configured initial
// score is returned.
func (e *Engine) Reputation(x, y EntityID, c Context, now float64) (float64, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.reputationLocked(x, y, c, now)
}

func (e *Engine) reputationLocked(x, y EntityID, c Context, now float64) (float64, error) {
	// Contributions are collected, sorted by recommender and only then
	// summed: ranging over e.rels visits recommenders in randomized map
	// order, and floating-point addition is not associative, so summing
	// in visit order makes Ω differ in the last ulp between runs — enough
	// to flip a trust-greedy tie and break replay determinism.
	type contribution struct {
		from  EntityID
		value float64
	}
	var contribs []contribution
	for k, rel := range e.rels {
		if k.to != y || k.ctx != c || k.from == x || k.from == y {
			continue
		}
		d := e.cfg.Decay(now-rel.lastTx, c)
		if err := validateDecayOutput(d); err != nil {
			return 0, err
		}
		r := e.recommenderFactor(k.from, y)
		if r < e.cfg.PurgeBelow {
			// Purged: a recommender distrusted this far is not averaged
			// in at the floor, it is ignored outright.
			continue
		}
		// Like Θ, each recommendation is anchored at the scale floor:
		// a distrusted or stale recommendation contributes the floor,
		// not an off-scale zero.
		contribs = append(contribs, contribution{k.from, MinScore + (rel.score-MinScore)*d*r})
	}
	if len(contribs) == 0 {
		return e.cfg.InitialScore, nil
	}
	sort.Slice(contribs, func(i, j int) bool { return contribs[i].from < contribs[j].from })
	var sum float64
	for _, ct := range contribs {
		sum += ct.value
	}
	return sum / float64(len(contribs)), nil
}

// Recommendation returns the decayed trust level recommender z would
// contribute about y in context c — RTT(z,y,c)·Υ anchored at the scale
// floor, before any R(x,z) weighting — and whether z has a recorded
// relationship with y at all.  It is the raw claim an entity audits when
// learning its recommender trust factors: compare what z says against
// what direct experience shows, and weight z accordingly.
func (e *Engine) Recommendation(z, y EntityID, c Context, now float64) (float64, bool, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	rel, ok := e.rels[relKey{z, y, c}]
	if !ok {
		return 0, false, nil
	}
	d := e.cfg.Decay(now-rel.lastTx, c)
	if err := validateDecayOutput(d); err != nil {
		return 0, false, err
	}
	return MinScore + (rel.score-MinScore)*d, true, nil
}

// Trust computes the eventual trust Γ(x,y,t,c) = α·Θ + β·Ω, clamped to the
// paper's [1,6] scale.
func (e *Engine) Trust(x, y EntityID, c Context, now float64) (float64, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	theta, err := e.directLocked(x, y, c, now)
	if err != nil {
		return 0, err
	}
	omega, err := e.reputationLocked(x, y, c, now)
	if err != nil {
		return 0, err
	}
	return clampScore(e.cfg.Alpha*theta + e.cfg.Beta*omega), nil
}

// Entities returns all entities the engine has seen, sorted for
// determinism.
func (e *Engine) Entities() []EntityID {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]EntityID, 0, len(e.peers))
	for id := range e.peers {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Relationships returns the number of stored (truster, trustee, context)
// records.
func (e *Engine) Relationships() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.rels)
}

// Prune removes relationships whose last transaction is older than
// `before` and whose decayed contribution has fallen to the scale floor —
// the garbage collection a long-running trust fabric needs ("managing ...
// trust in a large-scale distributed system", Section 7).  A relationship
// with pending (uncommitted) observations is never pruned.  It returns the
// number of records removed.
func (e *Engine) Prune(before float64) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	removed := 0
	for k, rel := range e.rels {
		if rel.pendingCount > 0 || rel.lastTx >= before {
			continue
		}
		delete(e.rels, k)
		removed++
	}
	return removed
}
