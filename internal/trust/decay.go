// Package trust implements the paper's trust and reputation machinery
// (Section 2.2): per-context direct-trust and reputation tables, the time
// decay function Υ, the recommender trust factor R that defends against
// collusion, and the eventual trust computation
//
//	Γ(x,y,t,c) = α·Θ(x,y,t,c) + β·Ω(y,t,c)
//	Θ(x,y,t,c) = DTT(x,y,c) · Υ(t−t_xy, c)
//	Ω(y,t,c)   = Σ_{z≠x} RTT(z,y,c)·R(z,y)·Υ(t−t_zy, c) / |{z≠x}|
//
// Trust values are continuous scores on the paper's numeric scale [1,6]
// (levels A-F).  The scheduling layer quantises them onto discrete levels
// via grid.LevelFromScore; this package is deliberately independent of the
// grid model so the engine can manage trust for any entity vocabulary.
package trust

import (
	"fmt"
	"math"
)

// Context identifies the context of a trust relationship, e.g. a type of
// activity.  "Entity y might trust entity x to use its storage resources
// but not to execute programs using these resources" (Section 2.1).
type Context string

// EntityID names a trust-holding entity (a client domain, resource domain,
// or any principal).
type EntityID string

// DecayFunc is the paper's Υ(Δt, c): a multiplicative decay applied to a
// trust level recorded Δt time units ago, in context c.  Implementations
// must return values in [0,1], with Υ(0,c)=1 and non-increasing in Δt:
// "the trust decays with time" (Section 2.2).
type DecayFunc func(elapsed float64, c Context) float64

// ExponentialDecay returns Υ(Δt) = 2^(−Δt/halfLife): after one half-life a
// remembered trust level counts half.  The paper does not fix a functional
// form, only the monotone-decay requirement; exponential decay is the
// canonical memoryless choice.
func ExponentialDecay(halfLife float64) DecayFunc {
	if halfLife <= 0 {
		panic("trust: ExponentialDecay requires a positive half-life")
	}
	return func(elapsed float64, _ Context) float64 {
		if elapsed <= 0 {
			return 1
		}
		return math.Exp2(-elapsed / halfLife)
	}
}

// LinearDecay returns Υ(Δt) = max(0, 1−Δt/horizon): trust from longer ago
// than horizon is worthless.
func LinearDecay(horizon float64) DecayFunc {
	if horizon <= 0 {
		panic("trust: LinearDecay requires a positive horizon")
	}
	return func(elapsed float64, _ Context) float64 {
		if elapsed <= 0 {
			return 1
		}
		v := 1 - elapsed/horizon
		if v < 0 {
			return 0
		}
		return v
	}
}

// StepDecay returns Υ(Δt) = 1 for Δt < fresh, then floor thereafter.  It
// models systems that treat all sufficiently recent experience as current.
func StepDecay(fresh, floor float64) DecayFunc {
	if fresh <= 0 {
		panic("trust: StepDecay requires a positive freshness window")
	}
	if floor < 0 || floor > 1 {
		panic("trust: StepDecay floor must be in [0,1]")
	}
	return func(elapsed float64, _ Context) float64 {
		if elapsed < fresh {
			return 1
		}
		return floor
	}
}

// NoDecay returns Υ ≡ 1, useful for tests and for static-table scenarios
// like the paper's scheduling simulations, where the table is regenerated
// rather than decayed.
func NoDecay() DecayFunc {
	return func(float64, Context) float64 { return 1 }
}

// PerContextDecay dispatches to a per-context decay function, falling back
// to def for unlisted contexts.  The paper indexes Υ by context: different
// activities may age at different speeds.
func PerContextDecay(def DecayFunc, byContext map[Context]DecayFunc) DecayFunc {
	if def == nil {
		panic("trust: PerContextDecay requires a default")
	}
	return func(elapsed float64, c Context) float64 {
		if f, ok := byContext[c]; ok {
			return f(elapsed, c)
		}
		return def(elapsed, c)
	}
}

// validateDecayOutput guards engine computations against misbehaving
// user-supplied decay functions.
func validateDecayOutput(v float64) error {
	if math.IsNaN(v) || v < 0 || v > 1 {
		return fmt.Errorf("trust: decay function returned %v, want [0,1]", v)
	}
	return nil
}
