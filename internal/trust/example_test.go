package trust_test

import (
	"fmt"

	"gridtrust/internal/trust"
)

// ExampleEngine_Trust shows the Γ = α·Θ + β·Ω computation: direct
// experience weighed against peer reputation.
func ExampleEngine_Trust() {
	engine, err := trust.NewEngine(trust.Config{
		Alpha: 0.6, Beta: 0.4, InitialScore: 1,
	})
	if err != nil {
		panic(err)
	}
	// Alice's own experience with the datacenter is excellent...
	_ = engine.SetDirect("alice", "datacenter", "compute", 6, 0)
	// ...but two peers report mediocre interactions.
	_ = engine.SetDirect("bob", "datacenter", "compute", 3, 0)
	_ = engine.SetDirect("carol", "datacenter", "compute", 2, 0)

	gamma, err := engine.Trust("alice", "datacenter", "compute", 0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("Γ = 0.6·6 + 0.4·mean(3,2) = %.1f\n", gamma)
	// Output:
	// Γ = 0.6·6 + 0.4·mean(3,2) = 4.6
}

// ExampleExponentialDecay shows the Υ time-decay factor.
func ExampleExponentialDecay() {
	decay := trust.ExponentialDecay(30) // 30-day half-life
	fmt.Printf("fresh: %.2f\n", decay(0, "compute"))
	fmt.Printf("30d:   %.2f\n", decay(30, "compute"))
	fmt.Printf("60d:   %.2f\n", decay(60, "compute"))
	// Output:
	// fresh: 1.00
	// 30d:   0.50
	// 60d:   0.25
}

// ExampleEngine_DeclareAlliance shows collusion damping: allied
// recommenders barely move reputation.
func ExampleEngine_DeclareAlliance() {
	engine, _ := trust.NewEngine(trust.Config{Alpha: 0, Beta: 1, InitialScore: 1})
	for _, shill := range []trust.EntityID{"s1", "s2", "s3"} {
		_ = engine.SetDirect(shill, "target", "compute", 6, 0)
		engine.DeclareAlliance(shill, "target")
	}
	gamma, _ := engine.Trust("observer", "target", "compute", 0)
	fmt.Printf("reputation from three colluding shills: %.1f (honest peers would give 6.0)\n", gamma)
	// Output:
	// reputation from three colluding shills: 1.5 (honest peers would give 6.0)
}
