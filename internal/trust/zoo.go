package trust

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// This file implements the rival trust models from the literature
// (PAPERS.md) behind the Model interface:
//
//   - "purge"   — recommendation purging by deviation test (Suresh Kumar
//     et al., arXiv 1201.2125): recommendations that deviate too far from
//     a reference value (the asker's own experience when it has enough,
//     else the claim median) are discarded before aggregation, so a
//     lying clique shouting 6.0 about a colluder is filtered out rather
//     than averaged in.
//   - "frtrust" — FRTRUST-style fuzzy reputation (Javanmardi et al.,
//     arXiv 1404.2632): direct score, reputation, history length and
//     subject load are fuzzified with triangular membership functions,
//     combined by a Mamdani rule base and defuzzified by centroid.
//   - "bawa"    — Bawa–Sharma reliability-weighted selection: direct
//     trust is discounted by the observed success rate (Laplace
//     smoothed), recommendations are weighted by recommender factor, and
//     the two blend by history confidence.
//
// All three are engine-backed: the Engine stores relationships,
// recommender factors and alliances (inheriting its deterministic
// string-ordered iteration), and zooBase layers the per-relationship
// observation tallies (counts of outcomes and positives) the rivals need
// but the paper's model does not.  Every float aggregation walks claims
// in the engine's presorted recommender order or fixed-size arrays, so
// results are bit-identical across runs, workers and shard counts.

// posThreshold splits outcomes into positive/negative at the scale
// midpoint for the reliability tallies.
const posThreshold = (MinScore + MaxScore) / 2

type obsKey struct {
	from EntityID
	to   EntityID
	ctx  Context
}

type obsVal struct {
	n   int32
	pos int32
}

type loadKey struct {
	to  EntityID
	ctx Context
}

// zooBase wraps an Engine with observation tallies and the model
// identity plumbing shared by every rival model.
type zooBase struct {
	*Engine
	name   string
	params string

	statsMu sync.Mutex
	obs     map[obsKey]obsVal
	loadCnt map[loadKey]int32
}

func newZooBase(name, params string, cfg Config) (*zooBase, error) {
	eng, err := NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	return &zooBase{
		Engine:  eng,
		name:    name,
		params:  params,
		obs:     make(map[obsKey]obsVal),
		loadCnt: make(map[loadKey]int32),
	}, nil
}

func (m *zooBase) ModelName() string   { return m.name }
func (m *zooBase) ModelParams() string { return m.params }

// Observe delegates to the engine and tallies the outcome.
func (m *zooBase) Observe(x, y EntityID, c Context, outcome, now float64) (bool, error) {
	changed, err := m.Engine.Observe(x, y, c, outcome, now)
	if err != nil {
		return changed, err
	}
	m.statsMu.Lock()
	v := m.obs[obsKey{x, y, c}]
	v.n++
	if outcome >= posThreshold {
		v.pos++
	}
	m.obs[obsKey{x, y, c}] = v
	m.loadCnt[loadKey{y, c}]++
	m.statsMu.Unlock()
	return changed, nil
}

// counts returns how many outcomes x has observed about y in c, and how
// many were positive.
func (m *zooBase) counts(x, y EntityID, c Context) (n, pos int32) {
	m.statsMu.Lock()
	v := m.obs[obsKey{x, y, c}]
	m.statsMu.Unlock()
	return v.n, v.pos
}

// load returns the total observations recorded about y in c by anyone —
// the FRTRUST "load" input: how heavily the subject is being used.
func (m *zooBase) load(y EntityID, c Context) int32 {
	m.statsMu.Lock()
	n := m.loadCnt[loadKey{y, c}]
	m.statsMu.Unlock()
	return n
}

// Export stamps the model identity and appends the tallies.
func (m *zooBase) Export() *Snapshot {
	snap := m.Engine.Export()
	snap.Model = m.name
	snap.ParamHash = ParamHash(m.name, m.params)
	m.statsMu.Lock()
	for k, v := range m.obs {
		snap.Counts = append(snap.Counts, ObservationCount{
			From: k.from, To: k.to, Ctx: k.ctx, N: v.n, Pos: v.pos,
		})
	}
	m.statsMu.Unlock()
	sort.Slice(snap.Counts, func(i, j int) bool {
		a, b := snap.Counts[i], snap.Counts[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Ctx < b.Ctx
	})
	return snap
}

// Import refuses snapshots taken under a different model, then merges
// engine state and tallies (overlapping tallies are replaced, like
// relationship records).
func (m *zooBase) Import(snap *Snapshot) error {
	if snap == nil {
		return fmt.Errorf("trust: nil snapshot")
	}
	if err := checkSnapshotModel(m.name, snap); err != nil {
		return err
	}
	for _, c := range snap.Counts {
		if c.N < 0 || c.Pos < 0 || c.Pos > c.N {
			return fmt.Errorf("trust: snapshot count %d/%d for %s→%s invalid", c.Pos, c.N, c.From, c.To)
		}
	}
	// The engine validates and installs relationship state; its own model
	// check expects the default stamp, so hand it an unstamped view.
	eng := *snap
	eng.Model, eng.ParamHash, eng.Counts = "", "", nil
	if err := m.Engine.Import(&eng); err != nil {
		return err
	}
	m.statsMu.Lock()
	for _, c := range snap.Counts {
		k := obsKey{c.From, c.To, c.Ctx}
		old := m.obs[k]
		m.obs[k] = obsVal{n: c.N, pos: c.Pos}
		m.loadCnt[loadKey{c.To, c.Ctx}] += c.N - old.n
	}
	m.statsMu.Unlock()
	return nil
}

// score01 maps the [1,6] scale onto [0,1] for the fuzzy stage.
func score01(s float64) float64 { return (s - MinScore) / (MaxScore - MinScore) }

// ── "purge": recommendation purging by deviation test ────────────────────

type purgeModel struct {
	*zooBase
	deviation float64 // max |claim − reference| a recommendation may show
	directMin int32   // own observations needed to trust Θ as the reference
}

const (
	purgeDeviation = 1.5
	purgeDirectMin = 3
)

func newPurgeModel(cfg Config) (Model, error) {
	params := fmt.Sprintf("%s,deviation=%g,directmin=%d",
		cfg.paramString(cfg.Decay == nil), purgeDeviation, purgeDirectMin)
	base, err := newZooBase("purge", params, cfg)
	if err != nil {
		return nil, err
	}
	return &purgeModel{zooBase: base, deviation: purgeDeviation, directMin: purgeDirectMin}, nil
}

// Trust filters recommendations by deviation from a reference before
// averaging.  With enough direct evidence the reference is the asker's
// own Θ — a clique cannot out-shout experience; without it, the claim
// median — a minority of liars cannot move the majority.  If every claim
// is purged, Ω falls back to the reference itself, never to the liars.
func (m *purgeModel) Trust(x, y EntityID, c Context, now float64) (float64, error) {
	theta, err := m.Engine.Direct(x, y, c, now)
	if err != nil {
		return 0, err
	}
	claims, err := m.Engine.claimsAbout(x, y, c, now, nil)
	if err != nil {
		return 0, err
	}
	n, _ := m.counts(x, y, c)
	ref := theta
	if n < m.directMin && len(claims) > 0 {
		ref = medianClaimValue(claims)
	}
	var sum float64
	kept := 0
	for _, cl := range claims {
		if math.Abs(cl.value-ref) > m.deviation {
			continue
		}
		sum += MinScore + (cl.value-MinScore)*cl.factor
		kept++
	}
	omega := ref
	if kept > 0 {
		omega = sum / float64(kept)
	}
	return clampScore(m.cfg.Alpha*theta + m.cfg.Beta*omega), nil
}

// medianClaimValue computes the median claim value.  Claims arrive in
// recommender-string order; values are re-sorted numerically, so the
// result is independent of who said what and deterministic.
func medianClaimValue(claims []claim) float64 {
	vals := make([]float64, len(claims))
	for i, cl := range claims {
		vals[i] = cl.value
	}
	sort.Float64s(vals)
	mid := len(vals) / 2
	if len(vals)%2 == 1 {
		return vals[mid]
	}
	return (vals[mid-1] + vals[mid]) / 2
}

// ── "frtrust": fuzzy reputation scoring ──────────────────────────────────

type fuzzyModel struct {
	*zooBase
	historySat float64 // observations at which history confidence reaches ½
	loadSat    float64 // subject observations at which load reaches ½
}

const (
	fuzzyHistorySat = 4.0
	fuzzyLoadSat    = 16.0
)

func newFuzzyModel(cfg Config) (Model, error) {
	params := fmt.Sprintf("%s,historysat=%g,loadsat=%g",
		cfg.paramString(cfg.Decay == nil), fuzzyHistorySat, fuzzyLoadSat)
	base, err := newZooBase("frtrust", params, cfg)
	if err != nil {
		return nil, err
	}
	return &fuzzyModel{zooBase: base, historySat: fuzzyHistorySat, loadSat: fuzzyLoadSat}, nil
}

// Trust fuzzifies the evidence.  The crisp evidence input blends Θ and
// the factor-weighted claim mean by history confidence h = n/(n+sat);
// the load input saturates with total observations about the subject.
// A 3×3 Mamdani rule base maps (evidence, load) to {low, med, high}
// trust, defuzzified by centroid — heavy load degrades mid/high trust
// one step, FRTRUST's resource-congestion discount.
func (m *fuzzyModel) Trust(x, y EntityID, c Context, now float64) (float64, error) {
	theta, err := m.Engine.Direct(x, y, c, now)
	if err != nil {
		return 0, err
	}
	claims, err := m.Engine.claimsAbout(x, y, c, now, nil)
	if err != nil {
		return 0, err
	}
	omega := theta
	if len(claims) > 0 {
		var sum float64
		for _, cl := range claims {
			sum += MinScore + (cl.value-MinScore)*cl.factor
		}
		omega = sum / float64(len(claims))
	}
	n, _ := m.counts(x, y, c)
	h := float64(n) / (float64(n) + m.historySat)
	evidence := h*score01(theta) + (1-h)*score01(omega)
	ny := m.load(y, c)
	load := float64(ny) / (float64(ny) + m.loadSat)
	z := defuzzTrust(evidence, load)
	return clampScore(MinScore + (MaxScore-MinScore)*z), nil
}

// triangularDegrees evaluates the standard three-set Ruspini partition
// {low, med, high} of [0,1] at x.  Adjacent memberships sum to 1, which
// keeps the Mamdani output monotone in x under a monotone rule base.
func triangularDegrees(x float64) [3]float64 {
	return [3]float64{
		math.Max(0, 1-2*x),
		math.Max(0, 1-2*math.Abs(x-0.5)),
		math.Max(0, 2*x-1),
	}
}

// defuzzTrust runs the rule base and centroid-defuzzifies to [0,1].
// Iteration is over fixed-size arrays in fixed order — bit-deterministic.
func defuzzTrust(evidence, load float64) float64 {
	me := triangularDegrees(evidence)
	ml := triangularDegrees(load)
	// rules[i][j] = output set for evidence level i under load level j.
	rules := [3][3]int{
		{0, 0, 0}, // low evidence → low trust at any load
		{1, 1, 0}, // medium evidence → medium, degraded under high load
		{2, 2, 1}, // high evidence → high, degraded under high load
	}
	centroids := [3]float64{1.0 / 6, 0.5, 5.0 / 6}
	var num, den float64
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			w := math.Min(me[i], ml[j])
			num += w * centroids[rules[i][j]]
			den += w
		}
	}
	// den > 0 always: each partition has a positive membership somewhere.
	return num / den
}

// ── "bawa": reliability-weighted selection ───────────────────────────────

type reliabilityModel struct {
	*zooBase
	historySat float64 // observations at which history confidence reaches ½
}

const reliabilityHistorySat = 2.0

func newReliabilityModel(cfg Config) (Model, error) {
	params := fmt.Sprintf("%s,historysat=%g",
		cfg.paramString(cfg.Decay == nil), reliabilityHistorySat)
	base, err := newZooBase("bawa", params, cfg)
	if err != nil {
		return nil, err
	}
	return &reliabilityModel{zooBase: base, historySat: reliabilityHistorySat}, nil
}

// Trust discounts direct trust by the Laplace-smoothed observed success
// rate ρ = (pos+1)/(n+2) — a resource that completes reliably keeps its
// score, a flaky one is pulled to the floor regardless of what it
// scored — and blends with factor-weighted recommendations by history
// confidence h = n/(n+sat).  A fresh identity (n = 0) is judged almost
// entirely on reputation, so whitewashing resets reliability to the
// uninformed prior instead of escaping it.
func (m *reliabilityModel) Trust(x, y EntityID, c Context, now float64) (float64, error) {
	theta, err := m.Engine.Direct(x, y, c, now)
	if err != nil {
		return 0, err
	}
	n, pos := m.counts(x, y, c)
	rho := (float64(pos) + 1) / (float64(n) + 2)
	direct := MinScore + (theta-MinScore)*rho
	claims, err := m.Engine.claimsAbout(x, y, c, now, nil)
	if err != nil {
		return 0, err
	}
	omega := m.cfg.InitialScore
	var wsum, vsum float64
	for _, cl := range claims {
		wsum += cl.factor
		vsum += cl.factor * cl.value
	}
	if wsum > 0 {
		omega = vsum / wsum
	}
	h := float64(n) / (float64(n) + m.historySat)
	return clampScore(h*direct + (1-h)*omega), nil
}

func init() {
	RegisterModel(ModelInfo{
		Name:        "purge",
		Description: "recommendation purging: deviation-test filtering of recommender input (Suresh Kumar et al.)",
		New:         newPurgeModel,
	})
	RegisterModel(ModelInfo{
		Name:        "frtrust",
		Description: "FRTRUST-style fuzzy reputation: triangular membership + centroid defuzzification over score/history/load",
		New:         newFuzzyModel,
	})
	RegisterModel(ModelInfo{
		Name:        "bawa",
		Description: "Bawa–Sharma reliability-weighted selection: success-rate-discounted direct trust blended with weighted reputation",
		New:         newReliabilityModel,
	})
}

var (
	_ Model = (*purgeModel)(nil)
	_ Model = (*fuzzyModel)(nil)
	_ Model = (*reliabilityModel)(nil)
)
