package trust

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"gridtrust/internal/rng"
)

// This file proves the indexed engine bit-identical to the map-based
// reference implementation (reference_test.go): the same program of
// mutations and queries must return float-bit-equal scores and equal
// snapshots on both.  FuzzEngineEquivalence feeds the same harness with
// fuzzer-derived programs.

var (
	equivEntities = []EntityID{"alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf", "stranger"}
	equivContexts = []Context{"compute", "storage", "transfer"}
)

// trustOp codes for engine equivalence programs.
const (
	topObserve = iota
	topSetDirect
	topAlliance
	topRecFactor
	topPrune
	topQuery // Direct+Reputation+Recommendation+Trust+Allied on one tuple
	topCount
)

// trustOp is one step of an engine equivalence program.  Fields are
// indices into the shared entity/context pools; val carries the
// outcome/score/factor/prune-horizon, dt the clock advance.
type trustOp struct {
	op      int
	x, y, z int
	c       int
	val     float64
	dt      float64
}

// equivConfigs are the engine configurations the property test cycles
// through; the fuzz target picks one by index.
func equivConfigs() []Config {
	return []Config{
		{Alpha: 0.5, Beta: 0.5},
		{Alpha: 1, Beta: 0},
		{Alpha: 0.3, Beta: 0.7, UpdateBatch: 3, Smoothing: 0.5},
		{Alpha: 0.5, Beta: 0.5, Decay: ExponentialDecay(0.01)},
		{Alpha: 0.7, Beta: 0.3, Decay: LinearDecay(100), PurgeBelow: 0.2},
		{Alpha: 0.5, Beta: 0.5, Decay: StepDecay(30, 0.4), InitialScore: 3},
		{Alpha: 0.6, Beta: 0.4, Decay: PerContextDecay(NoDecay(), map[Context]DecayFunc{
			"compute": ExponentialDecay(0.05),
		}), UpdateBatch: 2},
	}
}

// runEngineEquivProgram drives both engines through ops and fails on any
// observable divergence.
func runEngineEquivProgram(t testing.TB, cfg Config, ops []trustOp) {
	t.Helper()
	fast, err := NewEngine(cfg)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	ref, err := newRefEngine(cfg)
	if err != nil {
		t.Fatalf("newRefEngine: %v", err)
	}
	bits := math.Float64bits
	now := 0.0
	for i, o := range ops {
		now += o.dt
		x := equivEntities[o.x%len(equivEntities)]
		y := equivEntities[o.y%len(equivEntities)]
		z := equivEntities[o.z%len(equivEntities)]
		c := equivContexts[o.c%len(equivContexts)]
		switch o.op % topCount {
		case topObserve:
			g1, e1 := fast.Observe(x, y, c, o.val, now)
			g2, e2 := ref.Observe(x, y, c, o.val, now)
			if g1 != g2 || (e1 == nil) != (e2 == nil) {
				t.Fatalf("op %d Observe(%s,%s,%s,%g): fast (%v,%v), ref (%v,%v)", i, x, y, c, o.val, g1, e1, g2, e2)
			}
		case topSetDirect:
			e1 := fast.SetDirect(x, y, c, o.val, now)
			e2 := ref.SetDirect(x, y, c, o.val, now)
			if (e1 == nil) != (e2 == nil) {
				t.Fatalf("op %d SetDirect: fast %v, ref %v", i, e1, e2)
			}
		case topAlliance:
			fast.DeclareAlliance(x, z)
			ref.DeclareAlliance(x, z)
		case topRecFactor:
			e1 := fast.SetRecommenderFactor(z, y, o.val/MaxScore)
			e2 := ref.SetRecommenderFactor(z, y, o.val/MaxScore)
			if (e1 == nil) != (e2 == nil) {
				t.Fatalf("op %d SetRecommenderFactor: fast %v, ref %v", i, e1, e2)
			}
		case topPrune:
			g1 := fast.Prune(now - o.val)
			g2 := ref.Prune(now - o.val)
			if g1 != g2 {
				t.Fatalf("op %d Prune(%g): fast removed %d, ref %d", i, now-o.val, g1, g2)
			}
		case topQuery:
			d1, e1 := fast.Direct(x, y, c, now)
			d2, e2 := ref.Direct(x, y, c, now)
			if bits(d1) != bits(d2) || (e1 == nil) != (e2 == nil) {
				t.Fatalf("op %d Direct(%s,%s,%s,%g): fast %v (%v), ref %v (%v)", i, x, y, c, now, d1, e1, d2, e2)
			}
			r1, e1 := fast.Reputation(x, y, c, now)
			r2, e2 := ref.Reputation(x, y, c, now)
			if bits(r1) != bits(r2) || (e1 == nil) != (e2 == nil) {
				t.Fatalf("op %d Reputation(%s,%s,%s,%g): fast %v (%v), ref %v (%v)", i, x, y, c, now, r1, e1, r2, e2)
			}
			v1, ok1, e1 := fast.Recommendation(z, y, c, now)
			v2, ok2, e2 := ref.Recommendation(z, y, c, now)
			if bits(v1) != bits(v2) || ok1 != ok2 || (e1 == nil) != (e2 == nil) {
				t.Fatalf("op %d Recommendation(%s,%s,%s,%g): fast (%v,%v,%v), ref (%v,%v,%v)", i, z, y, c, now, v1, ok1, e1, v2, ok2, e2)
			}
			g1, e1 := fast.Trust(x, y, c, now)
			g2, e2 := ref.Trust(x, y, c, now)
			if bits(g1) != bits(g2) || (e1 == nil) != (e2 == nil) {
				t.Fatalf("op %d Trust(%s,%s,%s,%g): fast %v (%v), ref %v (%v)", i, x, y, c, now, g1, e1, g2, e2)
			}
			if a1, a2 := fast.Allied(x, z), ref.Allied(x, z); a1 != a2 {
				t.Fatalf("op %d Allied(%s,%s): fast %v, ref %v", i, x, z, a1, a2)
			}
		}
		if n1, n2 := fast.Relationships(), ref.Relationships(); n1 != n2 {
			t.Fatalf("op %d: fast holds %d relationships, ref %d", i, n1, n2)
		}
	}
	if g1, g2 := fast.Entities(), ref.Entities(); !reflect.DeepEqual(g1, g2) {
		t.Fatalf("Entities diverge: fast %v, ref %v", g1, g2)
	}
	if s1, s2 := fast.Export(), ref.Export(); !reflect.DeepEqual(s1, s2) {
		t.Fatalf("snapshots diverge:\nfast %+v\nref  %+v", s1, s2)
	}
}

// randomTrustProgram draws a mutation-heavy program over the shared pools.
func randomTrustProgram(src *rng.Source, n int) []trustOp {
	ops := make([]trustOp, n)
	for i := range ops {
		op := trustOp{
			op: src.Intn(topCount),
			x:  src.Intn(len(equivEntities)),
			y:  src.Intn(len(equivEntities)),
			z:  src.Intn(len(equivEntities)),
			c:  src.Intn(len(equivContexts)),
			// Outcomes/scores on [1,6]; quarter-steps provoke EWMA tails.
			val: 1 + float64(src.Intn(21))/4,
		}
		if src.Bool(0.6) {
			op.dt = float64(src.Intn(40)) / 2
		}
		if op.op == topPrune {
			op.val = float64(src.Intn(200))
		}
		ops[i] = op
	}
	return ops
}

// TestEngineEquivalence property-checks the indexed engine against the
// reference across every configuration class.
func TestEngineEquivalence(t *testing.T) {
	for ci, cfg := range equivConfigs() {
		cfg := cfg
		t.Run(fmt.Sprintf("config=%d", ci), func(t *testing.T) {
			src := rng.New(uint64(7700 + ci))
			for trial := 0; trial < 40; trial++ {
				runEngineEquivProgram(t, cfg, randomTrustProgram(src, 1+src.Intn(120)))
			}
		})
	}
}

// TestEngineEquivalenceSnapshotRoundTrip checks Import/Export parity on
// the rewritten persistence layer: a snapshot exported from a mutated
// engine, imported into a fresh one, must export byte-identically again,
// and overlapping imports must replace rather than duplicate.
func TestEngineEquivalenceSnapshotRoundTrip(t *testing.T) {
	src := rng.New(991)
	cfg := Config{Alpha: 0.5, Beta: 0.5, UpdateBatch: 2}
	fast, _ := NewEngine(cfg)
	ref, _ := newRefEngine(cfg)
	runEngineEquivProgram(t, cfg, randomTrustProgram(src, 200))
	// Mutate an engine pair directly, export, round-trip.
	for i := 0; i < 150; i++ {
		x := equivEntities[src.Intn(len(equivEntities))]
		y := equivEntities[src.Intn(len(equivEntities))]
		c := equivContexts[src.Intn(len(equivContexts))]
		out := 1 + float64(src.Intn(21))/4
		if _, err := fast.Observe(x, y, c, out, float64(i)); err != nil {
			t.Fatal(err)
		}
		if _, err := ref.Observe(x, y, c, out, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	fast.DeclareAlliance("alpha", "bravo")
	ref.DeclareAlliance("alpha", "bravo")
	if err := fast.SetRecommenderFactor("charlie", "delta", 0.25); err != nil {
		t.Fatal(err)
	}
	if err := ref.SetRecommenderFactor("charlie", "delta", 0.25); err != nil {
		t.Fatal(err)
	}
	snap := fast.Export()
	if !reflect.DeepEqual(snap, ref.Export()) {
		t.Fatal("export diverges from reference before round-trip")
	}
	fresh, _ := NewEngine(cfg)
	if err := fresh.Import(snap); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh.Export(), snap) {
		t.Fatal("round-tripped snapshot diverges")
	}
	// Importing again must replace overlapping records, not duplicate.
	if err := fresh.Import(snap); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh.Export(), snap) {
		t.Fatal("re-import duplicated records")
	}
	if fresh.Relationships() != len(snap.Relationships) {
		t.Fatalf("re-import holds %d relationships, want %d", fresh.Relationships(), len(snap.Relationships))
	}
}

// TestEngineZeroAllocHotPath pins the tentpole claim: once entities,
// contexts and relationships exist, Observe and Trust allocate nothing.
func TestEngineZeroAllocHotPath(t *testing.T) {
	eng, err := NewEngine(Config{Alpha: 0.5, Beta: 0.5, UpdateBatch: 2})
	if err != nil {
		t.Fatal(err)
	}
	ents := equivEntities[:6]
	ctx := equivContexts[0]
	for i, x := range ents {
		for j, y := range ents {
			if i == j {
				continue
			}
			if _, err := eng.Observe(x, y, ctx, 4, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	eng.DeclareAlliance(ents[0], ents[1])
	if err := eng.SetRecommenderFactor(ents[2], ents[3], 0.5); err != nil {
		t.Fatal(err)
	}
	now := 2.0
	allocs := testing.AllocsPerRun(200, func() {
		for i, x := range ents {
			y := ents[(i+1)%len(ents)]
			if _, err := eng.Observe(x, y, ctx, 5, now); err != nil {
				t.Fatal(err)
			}
			if _, err := eng.Trust(x, y, ctx, now); err != nil {
				t.Fatal(err)
			}
		}
		now++
	})
	if allocs != 0 {
		t.Fatalf("steady-state Observe+Trust allocates %.1f times per run, want 0", allocs)
	}
}

// FuzzEngineEquivalence cross-checks the engines on fuzzer-derived
// programs: each 8-byte chunk decodes to one operation.
func FuzzEngineEquivalence(f *testing.F) {
	f.Add(uint8(0), []byte{0, 1, 2, 0, 12, 4, 5, 1, 0, 2, 1, 0, 8, 0})
	f.Add(uint8(3), []byte{1, 0, 3, 1, 20, 2, 0, 1, 5, 4, 0, 2, 16, 6})
	f.Fuzz(func(t *testing.T, cfgPick uint8, data []byte) {
		cfgs := equivConfigs()
		cfg := cfgs[int(cfgPick)%len(cfgs)]
		var ops []trustOp
		for i := 0; i+7 <= len(data) && len(ops) < 300; i += 7 {
			ops = append(ops, trustOp{
				op:  int(data[i]),
				x:   int(data[i+1]),
				y:   int(data[i+2]),
				z:   int(data[i+3]),
				c:   int(data[i+4]),
				val: 1 + float64(data[i+5]%21)/4,
				dt:  float64(data[i+6]%64) / 2,
			})
		}
		if len(ops) == 0 {
			t.Skip()
		}
		runEngineEquivProgram(t, cfg, ops)
	})
}
