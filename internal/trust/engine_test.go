package trust

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func newTestEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func defaultCfg() Config {
	return Config{Alpha: 0.7, Beta: 0.3}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Alpha: 0.5, Beta: 0.6},                    // don't sum to 1
		{Alpha: -0.1, Beta: 1.1},                   // negative
		{Alpha: 0.5, Beta: 0.5, InitialScore: 9},   // off scale
		{Alpha: 0.5, Beta: 0.5, UpdateBatch: -2},   // bad batch
		{Alpha: 0.5, Beta: 0.5, Smoothing: 1.5},    // bad smoothing
		{Alpha: 0.5, Beta: 0.5, Smoothing: -0.1},   // bad smoothing
		{Alpha: 0.5, Beta: 0.5, InitialScore: 0.5}, // below scale
	}
	for i, cfg := range bad {
		if _, err := NewEngine(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := NewEngine(defaultCfg()); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestUnknownEntitiesGetInitialScore(t *testing.T) {
	e := newTestEngine(t, Config{Alpha: 0.6, Beta: 0.4, InitialScore: 2})
	g, err := e.Trust("x", "y", "compute", 0)
	if err != nil {
		t.Fatal(err)
	}
	if g != 2 {
		t.Fatalf("stranger trust = %g, want the initial score 2", g)
	}
}

func TestDirectTrustGammaWeighting(t *testing.T) {
	// With only x→y knowledge, Ω falls back to the initial score, so
	// Γ = α·Θ + β·initial.
	e := newTestEngine(t, Config{Alpha: 0.7, Beta: 0.3, InitialScore: 1})
	if err := e.SetDirect("x", "y", "c", 5, 0); err != nil {
		t.Fatal(err)
	}
	g, err := e.Trust("x", "y", "c", 0)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.7*5 + 0.3*1
	if math.Abs(g-want) > 1e-12 {
		t.Fatalf("Γ = %g, want %g", g, want)
	}
}

func TestReputationAveraging(t *testing.T) {
	// Two recommenders with R=1 and no decay: Ω = mean of their scores.
	e := newTestEngine(t, Config{Alpha: 0, Beta: 1, InitialScore: 1})
	if err := e.SetDirect("z1", "y", "c", 6, 0); err != nil {
		t.Fatal(err)
	}
	if err := e.SetDirect("z2", "y", "c", 2, 0); err != nil {
		t.Fatal(err)
	}
	g, err := e.Trust("x", "y", "c", 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g-4) > 1e-12 {
		t.Fatalf("Ω = %g, want 4", g)
	}
}

func TestReputationIsBitwiseDeterministic(t *testing.T) {
	// Ω averages over recommenders stored in a map; the sum must not
	// depend on map iteration order (floating-point addition is not
	// associative), or replayed experiments diverge in the last ulp.
	// Build two engines with the same relationships inserted in opposite
	// orders and query both repeatedly: every answer must be
	// bit-identical.
	const recommenders = 23
	build := func(reversed bool) *Engine {
		e := newTestEngine(t, Config{Alpha: 0, Beta: 1, InitialScore: 1})
		for i := 0; i < recommenders; i++ {
			j := i
			if reversed {
				j = recommenders - 1 - i
			}
			z := EntityID(fmt.Sprintf("z%02d", j))
			// Irregular scores and R factors so partial sums genuinely
			// depend on association.
			score := 1 + 5*math.Mod(float64(j)*0.37+0.11, 1)
			if err := e.SetDirect(z, "y", "c", score, float64(j)); err != nil {
				t.Fatal(err)
			}
			if err := e.SetRecommenderFactor(z, "y", 0.3+0.7*math.Mod(float64(j)*0.61, 1)); err != nil {
				t.Fatal(err)
			}
		}
		return e
	}
	a, b := build(false), build(true)
	want, err := a.Reputation("x", "y", "c", 30)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		ga, err := a.Reputation("x", "y", "c", 30)
		if err != nil {
			t.Fatal(err)
		}
		gb, err := b.Reputation("x", "y", "c", 30)
		if err != nil {
			t.Fatal(err)
		}
		if ga != want || gb != want {
			t.Fatalf("trial %d: reputation diverged: %v / %v, want %v", trial, ga, gb, want)
		}
	}
}

func TestReputationExcludesSelfAndTarget(t *testing.T) {
	e := newTestEngine(t, Config{Alpha: 0, Beta: 1, InitialScore: 1})
	// x's own relationship must not feed Ω ("∀ z ≠ x").
	if err := e.SetDirect("x", "y", "c", 6, 0); err != nil {
		t.Fatal(err)
	}
	// y's opinion of itself must not count either.
	if err := e.SetDirect("y", "y", "c", 6, 0); err != nil {
		t.Fatal(err)
	}
	g, err := e.Trust("x", "y", "c", 0)
	if err != nil {
		t.Fatal(err)
	}
	if g != 1 {
		t.Fatalf("Ω = %g, want initial score 1 (no eligible recommenders)", g)
	}
}

func TestReputationIsPerContext(t *testing.T) {
	e := newTestEngine(t, Config{Alpha: 0, Beta: 1, InitialScore: 1})
	if err := e.SetDirect("z", "y", "storage", 6, 0); err != nil {
		t.Fatal(err)
	}
	g, err := e.Trust("x", "y", "compute", 0)
	if err != nil {
		t.Fatal(err)
	}
	if g != 1 {
		t.Fatalf("compute trust = %g; storage recommendation leaked across contexts", g)
	}
}

func TestCollusionResistance(t *testing.T) {
	// A clique of allies praising y should move Ω far less than honest
	// recommenders would — the R factor at work.
	build := func(withAlliance bool) float64 {
		e := newTestEngine(t, Config{Alpha: 0, Beta: 1, InitialScore: 1})
		for _, z := range []EntityID{"s1", "s2", "s3"} {
			if err := e.SetDirect(z, "y", "c", 6, 0); err != nil {
				t.Fatal(err)
			}
			if withAlliance {
				e.DeclareAlliance(z, "y")
			}
		}
		g, err := e.Trust("x", "y", "c", 0)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	honest := build(false)
	colluding := build(true)
	if honest != 6 {
		t.Fatalf("honest reputation = %g, want 6", honest)
	}
	if colluding >= honest-2 {
		t.Fatalf("collusion barely dampened: honest=%g colluding=%g", honest, colluding)
	}
	if colluding < MinScore {
		t.Fatalf("colluding reputation %g fell off scale", colluding)
	}
}

func TestAlliedSymmetry(t *testing.T) {
	e := newTestEngine(t, defaultCfg())
	e.DeclareAlliance("a", "b")
	if !e.Allied("a", "b") || !e.Allied("b", "a") {
		t.Fatal("alliance is not symmetric")
	}
	if e.Allied("a", "c") {
		t.Fatal("phantom alliance")
	}
}

func TestRecommenderFactorOverride(t *testing.T) {
	e := newTestEngine(t, Config{Alpha: 0, Beta: 1, InitialScore: 1})
	if err := e.SetDirect("z", "y", "c", 6, 0); err != nil {
		t.Fatal(err)
	}
	if err := e.SetRecommenderFactor("z", "y", 0); err != nil {
		t.Fatal(err)
	}
	g, _ := e.Trust("x", "y", "c", 0)
	// R=0 anchors the recommendation at the scale floor.
	if g != 1 {
		t.Fatalf("zero-R recommendation contributed: Ω = %g", g)
	}
	if err := e.SetRecommenderFactor("z", "y", 1.5); err == nil {
		t.Fatal("accepted R outside [0,1]")
	}
}

func TestDecayReducesTrust(t *testing.T) {
	e := newTestEngine(t, Config{Alpha: 1, Beta: 0, Decay: ExponentialDecay(10)})
	if err := e.SetDirect("x", "y", "c", 6, 0); err != nil {
		t.Fatal(err)
	}
	fresh, _ := e.Trust("x", "y", "c", 0)
	later, _ := e.Trust("x", "y", "c", 10) // one half-life
	muchLater, _ := e.Trust("x", "y", "c", 100)
	if !(fresh > later && later > muchLater) {
		t.Fatalf("trust not decaying: %g, %g, %g", fresh, later, muchLater)
	}
	if math.Abs(later-(1+5*0.5)) > 1e-9 {
		t.Fatalf("half-life trust = %g, want 3.5", later)
	}
	if muchLater < MinScore {
		t.Fatalf("decayed trust %g fell below the scale floor", muchLater)
	}
}

func TestObserveBatching(t *testing.T) {
	// UpdateBatch=3: the first two observations must not commit.
	e := newTestEngine(t, Config{Alpha: 1, Beta: 0, UpdateBatch: 3, Smoothing: 1, InitialScore: 1})
	for i := 0; i < 2; i++ {
		changed, err := e.Observe("x", "y", "c", 6, float64(i))
		if err != nil {
			t.Fatal(err)
		}
		if changed {
			t.Fatalf("observation %d committed before the batch filled", i)
		}
		g, _ := e.Trust("x", "y", "c", float64(i))
		if g != 1 {
			t.Fatalf("trust moved to %g before batch commit", g)
		}
	}
	changed, err := e.Observe("x", "y", "c", 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("third observation did not commit the batch")
	}
	g, _ := e.Trust("x", "y", "c", 2)
	if g != 6 {
		t.Fatalf("after batch commit trust = %g, want 6 (smoothing=1)", g)
	}
}

func TestObserveSmoothing(t *testing.T) {
	e := newTestEngine(t, Config{Alpha: 1, Beta: 0, Smoothing: 0.5, InitialScore: 2})
	if _, err := e.Observe("x", "y", "c", 6, 0); err != nil {
		t.Fatal(err)
	}
	g, _ := e.Trust("x", "y", "c", 0)
	if math.Abs(g-4) > 1e-12 { // 0.5·2 + 0.5·6
		t.Fatalf("smoothed trust = %g, want 4", g)
	}
}

func TestObserveRejectsOffScaleOutcome(t *testing.T) {
	e := newTestEngine(t, defaultCfg())
	if _, err := e.Observe("x", "y", "c", 0.5, 0); err == nil {
		t.Fatal("accepted outcome below scale")
	}
	if _, err := e.Observe("x", "y", "c", 7, 0); err == nil {
		t.Fatal("accepted outcome above scale")
	}
}

func TestSetDirectValidation(t *testing.T) {
	e := newTestEngine(t, defaultCfg())
	if err := e.SetDirect("x", "y", "c", 0, 0); err == nil {
		t.Fatal("accepted score below scale")
	}
	if err := e.SetDirect("x", "y", "c", 6.5, 0); err == nil {
		t.Fatal("accepted score above scale")
	}
}

func TestTrustBoundsProperty(t *testing.T) {
	// Γ stays on [1,6] for arbitrary valid inputs and times.
	e := newTestEngine(t, Config{Alpha: 0.6, Beta: 0.4, Decay: ExponentialDecay(5)})
	f := func(scoreRaw, outcomeRaw uint8, dt float64) bool {
		score := MinScore + float64(scoreRaw%50)/49*5
		outcome := MinScore + float64(outcomeRaw%50)/49*5
		if err := e.SetDirect("x", "y", "c", score, 0); err != nil {
			return false
		}
		if _, err := e.Observe("z", "y", "c", outcome, 0); err != nil {
			return false
		}
		now := math.Abs(dt)
		if math.IsNaN(now) || math.IsInf(now, 0) {
			now = 1
		}
		g, err := e.Trust("x", "y", "c", now)
		return err == nil && g >= MinScore && g <= MaxScore
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEntitiesSortedAndComplete(t *testing.T) {
	e := newTestEngine(t, defaultCfg())
	_ = e.SetDirect("charlie", "alice", "c", 3, 0)
	_ = e.SetDirect("bob", "alice", "c", 3, 0)
	got := e.Entities()
	want := []EntityID{"alice", "bob", "charlie"}
	if len(got) != len(want) {
		t.Fatalf("entities = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entities = %v, want %v", got, want)
		}
	}
	if e.Relationships() != 2 {
		t.Fatalf("relationships = %d, want 2", e.Relationships())
	}
}

func TestBadDecaySurfacesError(t *testing.T) {
	cfg := Config{Alpha: 1, Beta: 0, Decay: func(float64, Context) float64 { return 2 }}
	e := newTestEngine(t, cfg)
	if err := e.SetDirect("x", "y", "c", 5, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Trust("x", "y", "c", 1); err == nil {
		t.Fatal("decay returning 2 was not rejected")
	}
}

func TestPruneRemovesStaleRelationships(t *testing.T) {
	e := newTestEngine(t, Config{Alpha: 1, Beta: 0})
	if err := e.SetDirect("old", "y", "c", 5, 10); err != nil {
		t.Fatal(err)
	}
	if err := e.SetDirect("fresh", "y", "c", 5, 100); err != nil {
		t.Fatal(err)
	}
	if removed := e.Prune(50); removed != 1 {
		t.Fatalf("pruned %d, want 1", removed)
	}
	if e.Relationships() != 1 {
		t.Fatalf("relationships = %d", e.Relationships())
	}
	// The stale relationship now reads as a stranger.
	g, err := e.Direct("old", "y", "c", 100)
	if err != nil {
		t.Fatal(err)
	}
	if g != e.cfg.InitialScore {
		t.Fatalf("pruned relationship still remembered: %g", g)
	}
	// The fresh one is untouched.
	g, _ = e.Direct("fresh", "y", "c", 100)
	if g != 5 {
		t.Fatalf("fresh relationship damaged: %g", g)
	}
}

func TestPruneSparesPendingBatches(t *testing.T) {
	e := newTestEngine(t, Config{Alpha: 1, Beta: 0, UpdateBatch: 3})
	if _, err := e.Observe("x", "y", "c", 5, 10); err != nil {
		t.Fatal(err)
	}
	if removed := e.Prune(1000); removed != 0 {
		t.Fatalf("pruned a relationship with pending evidence (%d)", removed)
	}
}
