package trust

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func populatedEngine(t *testing.T) *Engine {
	t.Helper()
	e := newTestEngine(t, Config{Alpha: 0.7, Beta: 0.3})
	if err := e.SetDirect("a", "b", "compute", 4.5, 10); err != nil {
		t.Fatal(err)
	}
	if err := e.SetDirect("c", "b", "storage", 2, 20); err != nil {
		t.Fatal(err)
	}
	if err := e.SetRecommenderFactor("c", "b", 0.8); err != nil {
		t.Fatal(err)
	}
	e.DeclareAlliance("d", "b")
	return e
}

func TestExportImportRoundTrip(t *testing.T) {
	e := populatedEngine(t)
	snap := e.Export()
	if len(snap.Relationships) != 2 || len(snap.Recommenders) != 1 || len(snap.Alliances) != 1 {
		t.Fatalf("snapshot shape: %d/%d/%d", len(snap.Relationships), len(snap.Recommenders), len(snap.Alliances))
	}

	fresh := newTestEngine(t, Config{Alpha: 0.7, Beta: 0.3})
	if err := fresh.Import(snap); err != nil {
		t.Fatal(err)
	}
	for _, probe := range []struct {
		x, y EntityID
		c    Context
	}{{"a", "b", "compute"}, {"c", "b", "storage"}} {
		orig, err := e.Direct(probe.x, probe.y, probe.c, 30)
		if err != nil {
			t.Fatal(err)
		}
		got, err := fresh.Direct(probe.x, probe.y, probe.c, 30)
		if err != nil {
			t.Fatal(err)
		}
		if got != orig {
			t.Fatalf("direct trust %s→%s differs: %g vs %g", probe.x, probe.y, got, orig)
		}
	}
	if !fresh.Allied("d", "b") || !fresh.Allied("b", "d") {
		t.Fatal("alliance lost in round trip")
	}
	if fresh.Relationships() != e.Relationships() {
		t.Fatal("relationship count differs")
	}
}

func TestSaveLoadJSON(t *testing.T) {
	e := populatedEngine(t)
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"version": 1`, `"from": "a"`, `"score": 4.5`} {
		if !strings.Contains(out, want) {
			t.Fatalf("JSON missing %q:\n%s", want, out)
		}
	}
	fresh := newTestEngine(t, Config{Alpha: 0.7, Beta: 0.3})
	if err := fresh.Load(strings.NewReader(out)); err != nil {
		t.Fatal(err)
	}
	g, err := fresh.Trust("a", "b", "compute", 10)
	if err != nil {
		t.Fatal(err)
	}
	want, err := e.Trust("a", "b", "compute", 10)
	if err != nil {
		t.Fatal(err)
	}
	if g != want {
		t.Fatalf("loaded trust %g, want %g", g, want)
	}
}

func TestExportDeterministic(t *testing.T) {
	e := populatedEngine(t)
	var a, b bytes.Buffer
	if err := e.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := e.Save(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("export is not deterministic")
	}
}

func TestImportValidation(t *testing.T) {
	e := newTestEngine(t, defaultCfg())
	if err := e.Import(nil); err == nil {
		t.Error("nil snapshot accepted")
	}
	if err := e.Import(&Snapshot{Version: 99}); err == nil {
		t.Error("unknown version accepted")
	}
	if err := e.Import(&Snapshot{Version: 1, Relationships: []RelationshipRecord{
		{From: "x", To: "y", Ctx: "c", Score: 9},
	}}); err == nil {
		t.Error("off-scale score accepted")
	}
	if err := e.Import(&Snapshot{Version: 1, Recommenders: []RecommenderRecord{
		{From: "x", About: "y", Factor: 2},
	}}); err == nil {
		t.Error("off-range recommender factor accepted")
	}
	// A failed import must not have mutated the engine.
	if e.Relationships() != 0 {
		t.Error("rejected import leaked state")
	}
}

func TestSnapshotVersionErrorTyped(t *testing.T) {
	e := newTestEngine(t, defaultCfg())
	err := e.Import(&Snapshot{Version: 99})
	if err == nil {
		t.Fatal("unknown version accepted")
	}
	if !errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("errors.Is(err, ErrSnapshotVersion) = false for %v", err)
	}
	var verr *SnapshotVersionError
	if !errors.As(err, &verr) {
		t.Fatalf("errors.As failed for %v", err)
	}
	if verr.Version != 99 {
		t.Fatalf("reported version %d, want 99", verr.Version)
	}
	// Load must propagate the sentinel through JSON parsing too.
	lerr := e.Load(strings.NewReader(`{"version": 7}`))
	if !errors.Is(lerr, ErrSnapshotVersion) {
		t.Fatalf("Load did not surface ErrSnapshotVersion: %v", lerr)
	}
	// Other import failures must NOT match the sentinel.
	serr := e.Import(&Snapshot{Version: 1, Relationships: []RelationshipRecord{
		{From: "x", To: "y", Ctx: "c", Score: 9},
	}})
	if errors.Is(serr, ErrSnapshotVersion) {
		t.Fatalf("score error wrongly matches ErrSnapshotVersion: %v", serr)
	}
}

func TestImportMergesWithoutClobbering(t *testing.T) {
	e := newTestEngine(t, Config{Alpha: 1, Beta: 0})
	if err := e.SetDirect("keep", "me", "c", 6, 0); err != nil {
		t.Fatal(err)
	}
	other := populatedEngine(t)
	if err := e.Import(other.Export()); err != nil {
		t.Fatal(err)
	}
	g, err := e.Direct("keep", "me", "c", 0)
	if err != nil {
		t.Fatal(err)
	}
	if g != 6 {
		t.Fatalf("pre-existing relationship clobbered: %g", g)
	}
	if e.Relationships() != 3 {
		t.Fatalf("merged relationship count = %d, want 3", e.Relationships())
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	e := newTestEngine(t, defaultCfg())
	if err := e.Load(strings.NewReader("{not json")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestExportExcludesPendingBatches(t *testing.T) {
	e := newTestEngine(t, Config{Alpha: 1, Beta: 0, UpdateBatch: 5})
	if _, err := e.Observe("x", "y", "c", 6, 0); err != nil {
		t.Fatal(err)
	}
	snap := e.Export()
	if len(snap.Relationships) != 1 {
		t.Fatalf("relationships = %d", len(snap.Relationships))
	}
	// The stored score is still the initial one: the batch (1 of 5 obs)
	// has not committed, and pending evidence must not leak.
	if snap.Relationships[0].Score != MinScore {
		t.Fatalf("pending batch leaked into export: score %g", snap.Relationships[0].Score)
	}
}
