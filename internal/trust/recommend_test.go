package trust

import (
	"math"
	"testing"
)

// TestRecommendation covers the raw-claim accessor used for recommender
// auditing: unknown relationships report ok=false, known ones return the
// decayed floor-anchored RTT before any R weighting.
func TestRecommendation(t *testing.T) {
	e, err := NewEngine(Config{Alpha: 0.5, Beta: 0.5, Smoothing: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := Context("compute")
	if _, ok, err := e.Recommendation("z", "y", ctx, 0); err != nil || ok {
		t.Fatalf("unknown relationship: ok=%v err=%v, want false,nil", ok, err)
	}
	if _, err := e.Observe("z", "y", ctx, 5, 0); err != nil {
		t.Fatal(err)
	}
	claim, ok, err := e.Recommendation("z", "y", ctx, 0)
	if err != nil || !ok {
		t.Fatalf("known relationship: ok=%v err=%v", ok, err)
	}
	if math.Abs(claim-5) > 1e-9 {
		t.Fatalf("claim = %g, want 5", claim)
	}
	// The claim must be independent of any R(z,y) override — it is what
	// z says, not what the auditor weighs it by.
	if err := e.SetRecommenderFactor("z", "y", 0); err != nil {
		t.Fatal(err)
	}
	claim2, _, err := e.Recommendation("z", "y", ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if claim2 != claim {
		t.Fatalf("claim changed with R: %g vs %g", claim2, claim)
	}
}

// TestPurgeBelow checks the untrustworthy-recommendation purge: with a
// threshold set, a zero-R recommender vanishes from Ω instead of dragging
// the average to the floor.
func TestPurgeBelow(t *testing.T) {
	ctx := Context("compute")
	build := func(purge float64) *Engine {
		e, err := NewEngine(Config{Alpha: 0.5, Beta: 0.5, Smoothing: 1, PurgeBelow: purge})
		if err != nil {
			t.Fatal(err)
		}
		// An honest recommender says 6, a zero-weighted liar says 1.
		for _, obs := range []struct {
			z EntityID
			v float64
		}{{"honest", 6}, {"liar", 1}} {
			if _, err := e.Observe(obs.z, "y", ctx, obs.v, 0); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.SetRecommenderFactor("liar", "y", 0); err != nil {
			t.Fatal(err)
		}
		return e
	}
	// Without purging the liar still contributes the floor: Ω = (6+1)/2.
	omega, err := build(0).Reputation("x", "y", ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(omega-3.5) > 1e-9 {
		t.Fatalf("unpurged Ω = %g, want 3.5", omega)
	}
	// With a threshold the liar is ignored outright: Ω = 6.
	omega, err = build(0.2).Reputation("x", "y", ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(omega-6) > 1e-9 {
		t.Fatalf("purged Ω = %g, want 6", omega)
	}
	if _, err := NewEngine(Config{Alpha: 1, PurgeBelow: 1.5}); err == nil {
		t.Fatal("purge threshold 1.5 must be rejected")
	}
}
