package trust

import (
	"fmt"
	"sort"
)

// refEngine is the original map-based Engine implementation, kept verbatim
// as the executable reference for the indexed rewrite: engine_equiv_test.go
// and FuzzEngineEquivalence drive both implementations with identical call
// sequences and require bit-identical scores (Ω sums contributions in
// recommender string order on both, so even the non-associative float
// additions agree).
type refRelationship struct {
	score  float64
	lastTx float64

	pendingSum   float64
	pendingCount int
}

type refRelKey struct {
	from EntityID
	to   EntityID
	ctx  Context
}

type refEngine struct {
	cfg     Config
	noDecay bool

	rels  map[refRelKey]*refRelationship
	rec   map[[2]EntityID]float64
	ally  map[[2]EntityID]bool
	peers map[EntityID]bool
}

func newRefEngine(cfg Config) (*refEngine, error) {
	noDecay := cfg.Decay == nil
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &refEngine{
		cfg:     cfg,
		noDecay: noDecay,
		rels:    make(map[refRelKey]*refRelationship),
		rec:     make(map[[2]EntityID]float64),
		ally:    make(map[[2]EntityID]bool),
		peers:   make(map[EntityID]bool),
	}, nil
}

func (e *refEngine) SetDirect(x, y EntityID, c Context, score, now float64) error {
	if score < MinScore || score > MaxScore {
		return fmt.Errorf("trust: score %g outside [%g,%g]", score, MinScore, MaxScore)
	}
	e.peers[x], e.peers[y] = true, true
	e.rels[refRelKey{x, y, c}] = &refRelationship{score: score, lastTx: now}
	return nil
}

func (e *refEngine) DeclareAlliance(a, b EntityID) {
	e.peers[a], e.peers[b] = true, true
	e.ally[[2]EntityID{a, b}] = true
	e.ally[[2]EntityID{b, a}] = true
}

func (e *refEngine) Allied(a, b EntityID) bool {
	return e.ally[[2]EntityID{a, b}]
}

func (e *refEngine) SetRecommenderFactor(z, y EntityID, r float64) error {
	if r < 0 || r > 1 {
		return fmt.Errorf("trust: recommender factor %g outside [0,1]", r)
	}
	e.peers[z], e.peers[y] = true, true
	e.rec[[2]EntityID{z, y}] = r
	return nil
}

func (e *refEngine) recommenderFactor(z, y EntityID) float64 {
	if r, ok := e.rec[[2]EntityID{z, y}]; ok {
		return r
	}
	if e.ally[[2]EntityID{z, y}] {
		return 0.1
	}
	return 1.0
}

func (e *refEngine) Observe(x, y EntityID, c Context, outcome, now float64) (bool, error) {
	if outcome < MinScore || outcome > MaxScore {
		return false, fmt.Errorf("trust: outcome %g outside [%g,%g]", outcome, MinScore, MaxScore)
	}
	e.peers[x], e.peers[y] = true, true
	k := refRelKey{x, y, c}
	rel, ok := e.rels[k]
	if !ok {
		rel = &refRelationship{score: e.cfg.InitialScore, lastTx: now}
		e.rels[k] = rel
	}
	rel.pendingSum += outcome
	rel.pendingCount++
	rel.lastTx = now
	if rel.pendingCount < e.cfg.UpdateBatch {
		return false, nil
	}
	batchMean := rel.pendingSum / float64(rel.pendingCount)
	rel.pendingSum, rel.pendingCount = 0, 0
	s := e.cfg.Smoothing
	rel.score = clampScore((1-s)*rel.score + s*batchMean)
	return true, nil
}

func (e *refEngine) Direct(x, y EntityID, c Context, now float64) (float64, error) {
	rel, ok := e.rels[refRelKey{x, y, c}]
	if !ok {
		return e.cfg.InitialScore, nil
	}
	d := e.cfg.Decay(now-rel.lastTx, c)
	if err := validateDecayOutput(d); err != nil {
		return 0, err
	}
	return MinScore + (rel.score-MinScore)*d, nil
}

func (e *refEngine) Reputation(x, y EntityID, c Context, now float64) (float64, error) {
	type contribution struct {
		from  EntityID
		value float64
	}
	var contribs []contribution
	for k, rel := range e.rels {
		if k.to != y || k.ctx != c || k.from == x || k.from == y {
			continue
		}
		d := e.cfg.Decay(now-rel.lastTx, c)
		if err := validateDecayOutput(d); err != nil {
			return 0, err
		}
		r := e.recommenderFactor(k.from, y)
		if r < e.cfg.PurgeBelow {
			continue
		}
		contribs = append(contribs, contribution{k.from, MinScore + (rel.score-MinScore)*d*r})
	}
	if len(contribs) == 0 {
		return e.cfg.InitialScore, nil
	}
	sort.Slice(contribs, func(i, j int) bool { return contribs[i].from < contribs[j].from })
	var sum float64
	for _, ct := range contribs {
		sum += ct.value
	}
	return sum / float64(len(contribs)), nil
}

func (e *refEngine) Recommendation(z, y EntityID, c Context, now float64) (float64, bool, error) {
	rel, ok := e.rels[refRelKey{z, y, c}]
	if !ok {
		return 0, false, nil
	}
	d := e.cfg.Decay(now-rel.lastTx, c)
	if err := validateDecayOutput(d); err != nil {
		return 0, false, err
	}
	return MinScore + (rel.score-MinScore)*d, true, nil
}

func (e *refEngine) Trust(x, y EntityID, c Context, now float64) (float64, error) {
	theta, err := e.Direct(x, y, c, now)
	if err != nil {
		return 0, err
	}
	omega, err := e.Reputation(x, y, c, now)
	if err != nil {
		return 0, err
	}
	return clampScore(e.cfg.Alpha*theta + e.cfg.Beta*omega), nil
}

func (e *refEngine) Entities() []EntityID {
	out := make([]EntityID, 0, len(e.peers))
	for id := range e.peers {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (e *refEngine) Relationships() int { return len(e.rels) }

func (e *refEngine) Prune(before float64) int {
	removed := 0
	for k, rel := range e.rels {
		if rel.pendingCount > 0 || rel.lastTx >= before {
			continue
		}
		delete(e.rels, k)
		removed++
	}
	return removed
}

// Export mirrors Engine.Export for snapshot-level equivalence checks.
func (e *refEngine) Export() *Snapshot {
	snap := &Snapshot{
		Version:   snapshotVersion,
		Model:     DefaultModel,
		ParamHash: ParamHash(DefaultModel, e.cfg.paramString(e.noDecay)),
	}
	for k, rel := range e.rels {
		snap.Relationships = append(snap.Relationships, RelationshipRecord{
			From: k.from, To: k.to, Ctx: k.ctx,
			Score: rel.score, LastTx: rel.lastTx,
		})
	}
	for k, r := range e.rec {
		snap.Recommenders = append(snap.Recommenders, RecommenderRecord{
			From: k[0], About: k[1], Factor: r,
		})
	}
	seen := map[[2]EntityID]bool{}
	for k := range e.ally {
		a, b := k[0], k[1]
		if a > b {
			a, b = b, a
		}
		if !seen[[2]EntityID{a, b}] {
			seen[[2]EntityID{a, b}] = true
			snap.Alliances = append(snap.Alliances, [2]EntityID{a, b})
		}
	}
	sort.Slice(snap.Relationships, func(i, j int) bool {
		a, b := snap.Relationships[i], snap.Relationships[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Ctx < b.Ctx
	})
	sort.Slice(snap.Recommenders, func(i, j int) bool {
		a, b := snap.Recommenders[i], snap.Recommenders[j]
		if a.From != b.From {
			return a.From < b.From
		}
		return a.About < b.About
	})
	sort.Slice(snap.Alliances, func(i, j int) bool {
		a, b := snap.Alliances[i], snap.Alliances[j]
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		return a[1] < b[1]
	})
	return snap
}
