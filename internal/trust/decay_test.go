package trust

import (
	"math"
	"testing"
	"testing/quick"
)

func TestExponentialDecay(t *testing.T) {
	d := ExponentialDecay(10)
	if got := d(0, ""); got != 1 {
		t.Fatalf("Υ(0) = %g, want 1", got)
	}
	if got := d(10, ""); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Υ(halfLife) = %g, want 0.5", got)
	}
	if got := d(20, ""); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("Υ(2·halfLife) = %g, want 0.25", got)
	}
	if got := d(-5, ""); got != 1 {
		t.Fatalf("Υ(negative) = %g, want 1", got)
	}
}

func TestLinearDecay(t *testing.T) {
	d := LinearDecay(100)
	if d(0, "") != 1 || d(50, "") != 0.5 || d(100, "") != 0 || d(200, "") != 0 {
		t.Fatal("linear decay values wrong")
	}
}

func TestStepDecay(t *testing.T) {
	d := StepDecay(10, 0.2)
	if d(5, "") != 1 || d(10, "") != 0.2 || d(1000, "") != 0.2 {
		t.Fatal("step decay values wrong")
	}
}

func TestNoDecay(t *testing.T) {
	d := NoDecay()
	if d(1e12, "") != 1 {
		t.Fatal("NoDecay decayed")
	}
}

func TestPerContextDecay(t *testing.T) {
	d := PerContextDecay(NoDecay(), map[Context]DecayFunc{
		"volatile": LinearDecay(10),
	})
	if d(5, "volatile") != 0.5 {
		t.Fatal("per-context decay did not dispatch")
	}
	if d(5, "stable") != 1 {
		t.Fatal("per-context default not used")
	}
}

func TestDecayMonotoneProperty(t *testing.T) {
	decays := map[string]DecayFunc{
		"exp":    ExponentialDecay(7),
		"linear": LinearDecay(13),
		"step":   StepDecay(4, 0.3),
	}
	for name, d := range decays {
		f := func(aRaw, bRaw uint16) bool {
			a, b := float64(aRaw), float64(bRaw)
			if a > b {
				a, b = b, a
			}
			va, vb := d(a, ""), d(b, "")
			return va >= vb && va >= 0 && va <= 1 && vb >= 0 && vb <= 1
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s decay not monotone in [0,1]: %v", name, err)
		}
	}
}

func TestDecayConstructorsPanicOnBadArgs(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"ExpZero", func() { ExponentialDecay(0) }},
		{"LinearNeg", func() { LinearDecay(-1) }},
		{"StepZeroFresh", func() { StepDecay(0, 0.5) }},
		{"StepBadFloor", func() { StepDecay(1, 2) }},
		{"PerContextNilDefault", func() { PerContextDecay(nil, nil) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", tc.name)
				}
			}()
			tc.fn()
		})
	}
}

func TestValidateDecayOutput(t *testing.T) {
	for _, v := range []float64{0, 0.5, 1} {
		if err := validateDecayOutput(v); err != nil {
			t.Errorf("valid decay %g rejected: %v", v, err)
		}
	}
	for _, v := range []float64{-0.1, 1.1, math.NaN()} {
		if err := validateDecayOutput(v); err == nil {
			t.Errorf("invalid decay %g accepted", v)
		}
	}
}
