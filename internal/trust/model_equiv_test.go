package trust

import (
	"fmt"
	"math"
	"reflect"
	"sort"
	"testing"

	"gridtrust/internal/rng"
)

// This file proves every registered rival model bit-identical to a naive
// map-based reference implementation, the same way engine_equiv_test.go
// proves the indexed engine against refEngine.  Each reference mirrors
// its model's exact float operation order (claims walked in recommender
// string order, fixed-order fuzzy arrays), so divergence of a single ULP
// fails the run.  FuzzModelEquivalence feeds the same harness with
// fuzzer-derived programs.

// refZooModel is the naive reference for the zoo models: a refEngine for
// relationship state plus plain maps for the observation tallies.
type refZooModel struct {
	name   string
	params string
	eng    *refEngine
	obs    map[obsKey]obsVal
	load   map[loadKey]int32
}

func newRefZooModel(name, params string, cfg Config) (*refZooModel, error) {
	eng, err := newRefEngine(cfg)
	if err != nil {
		return nil, err
	}
	return &refZooModel{
		name:   name,
		params: params,
		eng:    eng,
		obs:    make(map[obsKey]obsVal),
		load:   make(map[loadKey]int32),
	}, nil
}

func (m *refZooModel) Observe(x, y EntityID, c Context, outcome, now float64) (bool, error) {
	changed, err := m.eng.Observe(x, y, c, outcome, now)
	if err != nil {
		return changed, err
	}
	v := m.obs[obsKey{x, y, c}]
	v.n++
	if outcome >= posThreshold {
		v.pos++
	}
	m.obs[obsKey{x, y, c}] = v
	m.load[loadKey{y, c}]++
	return changed, nil
}

// claimsAbout mirrors Engine.claimsAbout on the map store: every incoming
// relationship to y in c except from x and y itself, decayed and paired
// with the recommender factor, in recommender string order.
func (m *refZooModel) claimsAbout(x, y EntityID, c Context, now float64) ([]claim, error) {
	var keys []refRelKey
	for k := range m.eng.rels {
		if k.to != y || k.ctx != c || k.from == x || k.from == y {
			continue
		}
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].from < keys[j].from })
	out := make([]claim, 0, len(keys))
	for _, k := range keys {
		rel := m.eng.rels[k]
		d := m.eng.cfg.Decay(now-rel.lastTx, c)
		if err := validateDecayOutput(d); err != nil {
			return nil, err
		}
		out = append(out, claim{
			peer:   k.from,
			value:  MinScore + (rel.score-MinScore)*d,
			factor: m.eng.recommenderFactor(k.from, y),
		})
	}
	return out, nil
}

func (m *refZooModel) Trust(x, y EntityID, c Context, now float64) (float64, error) {
	switch m.name {
	case "purge":
		return m.purgeTrust(x, y, c, now)
	case "frtrust":
		return m.fuzzyTrust(x, y, c, now)
	case "bawa":
		return m.reliabilityTrust(x, y, c, now)
	default:
		return m.eng.Trust(x, y, c, now)
	}
}

func (m *refZooModel) purgeTrust(x, y EntityID, c Context, now float64) (float64, error) {
	theta, err := m.eng.Direct(x, y, c, now)
	if err != nil {
		return 0, err
	}
	claims, err := m.claimsAbout(x, y, c, now)
	if err != nil {
		return 0, err
	}
	ref := theta
	if m.obs[obsKey{x, y, c}].n < purgeDirectMin && len(claims) > 0 {
		vals := make([]float64, len(claims))
		for i, cl := range claims {
			vals[i] = cl.value
		}
		sort.Float64s(vals)
		if len(vals)%2 == 1 {
			ref = vals[len(vals)/2]
		} else {
			ref = (vals[len(vals)/2-1] + vals[len(vals)/2]) / 2
		}
	}
	var sum float64
	kept := 0
	for _, cl := range claims {
		if math.Abs(cl.value-ref) > purgeDeviation {
			continue
		}
		sum += MinScore + (cl.value-MinScore)*cl.factor
		kept++
	}
	omega := ref
	if kept > 0 {
		omega = sum / float64(kept)
	}
	return clampScore(m.eng.cfg.Alpha*theta + m.eng.cfg.Beta*omega), nil
}

func (m *refZooModel) fuzzyTrust(x, y EntityID, c Context, now float64) (float64, error) {
	theta, err := m.eng.Direct(x, y, c, now)
	if err != nil {
		return 0, err
	}
	claims, err := m.claimsAbout(x, y, c, now)
	if err != nil {
		return 0, err
	}
	omega := theta
	if len(claims) > 0 {
		var sum float64
		for _, cl := range claims {
			sum += MinScore + (cl.value-MinScore)*cl.factor
		}
		omega = sum / float64(len(claims))
	}
	n := m.obs[obsKey{x, y, c}].n
	h := float64(n) / (float64(n) + fuzzyHistorySat)
	evidence := h*score01(theta) + (1-h)*score01(omega)
	ny := m.load[loadKey{y, c}]
	load := float64(ny) / (float64(ny) + fuzzyLoadSat)

	// Naive Mamdani stage: same partitions, rules and centroids as
	// defuzzTrust, written out independently in the same fixed order.
	tri := func(v float64) [3]float64 {
		return [3]float64{
			math.Max(0, 1-2*v),
			math.Max(0, 1-2*math.Abs(v-0.5)),
			math.Max(0, 2*v-1),
		}
	}
	me, ml := tri(evidence), tri(load)
	rules := [3][3]int{{0, 0, 0}, {1, 1, 0}, {2, 2, 1}}
	centroids := [3]float64{1.0 / 6, 0.5, 5.0 / 6}
	var num, den float64
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			w := math.Min(me[i], ml[j])
			num += w * centroids[rules[i][j]]
			den += w
		}
	}
	return clampScore(MinScore + (MaxScore-MinScore)*(num/den)), nil
}

func (m *refZooModel) reliabilityTrust(x, y EntityID, c Context, now float64) (float64, error) {
	theta, err := m.eng.Direct(x, y, c, now)
	if err != nil {
		return 0, err
	}
	v := m.obs[obsKey{x, y, c}]
	rho := (float64(v.pos) + 1) / (float64(v.n) + 2)
	direct := MinScore + (theta-MinScore)*rho
	claims, err := m.claimsAbout(x, y, c, now)
	if err != nil {
		return 0, err
	}
	omega := m.eng.cfg.InitialScore
	var wsum, vsum float64
	for _, cl := range claims {
		wsum += cl.factor
		vsum += cl.factor * cl.value
	}
	if wsum > 0 {
		omega = vsum / wsum
	}
	h := float64(v.n) / (float64(v.n) + reliabilityHistorySat)
	return clampScore(h*direct + (1-h)*omega), nil
}

// Export mirrors zooBase.Export: the engine snapshot stamped with the
// model identity plus the sorted observation tallies.
func (m *refZooModel) Export() *Snapshot {
	snap := m.eng.Export()
	if m.name == DefaultModel {
		return snap
	}
	snap.Model = m.name
	snap.ParamHash = ParamHash(m.name, m.params)
	for k, v := range m.obs {
		snap.Counts = append(snap.Counts, ObservationCount{
			From: k.from, To: k.to, Ctx: k.ctx, N: v.n, Pos: v.pos,
		})
	}
	sort.Slice(snap.Counts, func(i, j int) bool {
		a, b := snap.Counts[i], snap.Counts[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Ctx < b.Ctx
	})
	return snap
}

// runModelEquivProgram drives a registered model and its naive reference
// through the same program and fails on any observable divergence.
func runModelEquivProgram(t testing.TB, name string, cfg Config, ops []trustOp) {
	t.Helper()
	m, err := NewModel(name, cfg)
	if err != nil {
		t.Fatalf("NewModel(%q): %v", name, err)
	}
	ref, err := newRefZooModel(name, m.ModelParams(), cfg)
	if err != nil {
		t.Fatalf("newRefZooModel(%q): %v", name, err)
	}
	bits := math.Float64bits
	now := 0.0
	for i, o := range ops {
		now += o.dt
		x := equivEntities[o.x%len(equivEntities)]
		y := equivEntities[o.y%len(equivEntities)]
		z := equivEntities[o.z%len(equivEntities)]
		c := equivContexts[o.c%len(equivContexts)]
		switch o.op % topCount {
		case topObserve:
			g1, e1 := m.Observe(x, y, c, o.val, now)
			g2, e2 := ref.Observe(x, y, c, o.val, now)
			if g1 != g2 || (e1 == nil) != (e2 == nil) {
				t.Fatalf("%s op %d Observe(%s,%s,%s,%g): model (%v,%v), ref (%v,%v)", name, i, x, y, c, o.val, g1, e1, g2, e2)
			}
		case topSetDirect:
			e1 := m.SetDirect(x, y, c, o.val, now)
			e2 := ref.eng.SetDirect(x, y, c, o.val, now)
			if (e1 == nil) != (e2 == nil) {
				t.Fatalf("%s op %d SetDirect: model %v, ref %v", name, i, e1, e2)
			}
		case topAlliance:
			m.DeclareAlliance(x, z)
			ref.eng.DeclareAlliance(x, z)
		case topRecFactor:
			e1 := m.SetRecommenderFactor(z, y, o.val/MaxScore)
			e2 := ref.eng.SetRecommenderFactor(z, y, o.val/MaxScore)
			if (e1 == nil) != (e2 == nil) {
				t.Fatalf("%s op %d SetRecommenderFactor: model %v, ref %v", name, i, e1, e2)
			}
		case topPrune:
			g1 := m.UnderlyingEngine().Prune(now - o.val)
			g2 := ref.eng.Prune(now - o.val)
			if g1 != g2 {
				t.Fatalf("%s op %d Prune(%g): model removed %d, ref %d", name, i, now-o.val, g1, g2)
			}
		case topQuery:
			d1, e1 := m.Direct(x, y, c, now)
			d2, e2 := ref.eng.Direct(x, y, c, now)
			if bits(d1) != bits(d2) || (e1 == nil) != (e2 == nil) {
				t.Fatalf("%s op %d Direct(%s,%s,%s,%g): model %v (%v), ref %v (%v)", name, i, x, y, c, now, d1, e1, d2, e2)
			}
			v1, ok1, e1 := m.Recommendation(z, y, c, now)
			v2, ok2, e2 := ref.eng.Recommendation(z, y, c, now)
			if bits(v1) != bits(v2) || ok1 != ok2 || (e1 == nil) != (e2 == nil) {
				t.Fatalf("%s op %d Recommendation(%s,%s,%s,%g): model (%v,%v,%v), ref (%v,%v,%v)", name, i, z, y, c, now, v1, ok1, e1, v2, ok2, e2)
			}
			g1, e1 := m.Trust(x, y, c, now)
			g2, e2 := ref.Trust(x, y, c, now)
			if bits(g1) != bits(g2) || (e1 == nil) != (e2 == nil) {
				t.Fatalf("%s op %d Trust(%s,%s,%s,%g): model %v (%v), ref %v (%v)", name, i, x, y, c, now, g1, e1, g2, e2)
			}
		}
		if n1, n2 := m.Relationships(), ref.eng.Relationships(); n1 != n2 {
			t.Fatalf("%s op %d: model holds %d relationships, ref %d", name, i, n1, n2)
		}
	}
	if g1, g2 := m.Entities(), ref.eng.Entities(); !reflect.DeepEqual(g1, g2) {
		t.Fatalf("%s: Entities diverge: model %v, ref %v", name, g1, g2)
	}
	if s1, s2 := m.Export(), ref.Export(); !reflect.DeepEqual(s1, s2) {
		t.Fatalf("%s: snapshots diverge:\nmodel %+v\nref   %+v", name, s1, s2)
	}
}

// TestModelEquivalence property-checks every registered model against its
// reference across every configuration class.
func TestModelEquivalence(t *testing.T) {
	for _, name := range ModelNames() {
		for ci, cfg := range equivConfigs() {
			cfg := cfg
			t.Run(fmt.Sprintf("%s/config=%d", name, ci), func(t *testing.T) {
				src := rng.New(uint64(8800 + ci))
				for trial := 0; trial < 25; trial++ {
					runModelEquivProgram(t, name, cfg, randomTrustProgram(src, 1+src.Intn(100)))
				}
			})
		}
	}
}

// FuzzModelEquivalence cross-checks every registered model against its
// reference on fuzzer-derived programs: each 7-byte chunk decodes to one
// operation (the FuzzEngineEquivalence encoding).
func FuzzModelEquivalence(f *testing.F) {
	f.Add(uint8(0), []byte{0, 1, 2, 0, 12, 4, 5, 1, 0, 2, 1, 0, 8, 0})
	f.Add(uint8(2), []byte{5, 0, 3, 1, 20, 2, 0, 1, 5, 4, 0, 2, 16, 6, 5, 1, 2, 3, 0, 9, 1})
	f.Fuzz(func(t *testing.T, cfgPick uint8, data []byte) {
		cfgs := equivConfigs()
		cfg := cfgs[int(cfgPick)%len(cfgs)]
		var ops []trustOp
		for i := 0; i+7 <= len(data) && len(ops) < 200; i += 7 {
			ops = append(ops, trustOp{
				op:  int(data[i]),
				x:   int(data[i+1]),
				y:   int(data[i+2]),
				z:   int(data[i+3]),
				c:   int(data[i+4]),
				val: 1 + float64(data[i+5]%21)/4,
				dt:  float64(data[i+6]%64) / 2,
			})
		}
		if len(ops) == 0 {
			t.Skip()
		}
		for _, name := range ModelNames() {
			runModelEquivProgram(t, name, cfg, ops)
		}
	})
}
