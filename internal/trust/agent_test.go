package trust

import (
	"sync"
	"testing"
)

func TestAgentProcessesTransactions(t *testing.T) {
	e := newTestEngine(t, Config{Alpha: 1, Beta: 0, Smoothing: 1, InitialScore: 1})
	in := make(chan Transaction)
	var mu sync.Mutex
	var updates []float64
	a, err := NewAgent("rd-agent", e, in, func(x, y EntityID, c Context, score float64) {
		mu.Lock()
		updates = append(updates, score)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { a.Run(); close(done) }()

	in <- Transaction{From: "cd0", To: "rd1", Ctx: "compute", Outcome: 5, Now: 1}
	in <- Transaction{From: "cd0", To: "rd1", Ctx: "compute", Outcome: 3, Now: 2}
	close(in)
	<-done

	processed, committed, rejected := a.Stats()
	if processed != 2 || committed != 2 || rejected != 0 {
		t.Fatalf("stats = %d/%d/%d, want 2/2/0", processed, committed, rejected)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(updates) != 2 {
		t.Fatalf("update hook fired %d times, want 2", len(updates))
	}
	if updates[0] != 5 || updates[1] != 3 {
		t.Fatalf("updates = %v, want [5 3] with smoothing=1", updates)
	}
}

func TestAgentBatchingSuppressesUpdates(t *testing.T) {
	e := newTestEngine(t, Config{Alpha: 1, Beta: 0, UpdateBatch: 3, Smoothing: 1, InitialScore: 1})
	in := make(chan Transaction, 3)
	fired := 0
	a, err := NewAgent("a", e, in, func(EntityID, EntityID, Context, float64) { fired++ })
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		in <- Transaction{From: "x", To: "y", Ctx: "c", Outcome: 6, Now: float64(i)}
	}
	close(in)
	a.Run() // synchronous: channel pre-filled and closed
	if fired != 1 {
		t.Fatalf("update hook fired %d times, want 1 (batch of 3)", fired)
	}
	_, committed, _ := a.Stats()
	if committed != 1 {
		t.Fatalf("committed = %d, want 1", committed)
	}
}

func TestAgentRecordsBadTransactions(t *testing.T) {
	e := newTestEngine(t, defaultCfg())
	in := make(chan Transaction, 2)
	a, err := NewAgent("a", e, in, nil)
	if err != nil {
		t.Fatal(err)
	}
	in <- Transaction{From: "x", To: "y", Ctx: "c", Outcome: 99, Now: 0} // off scale
	in <- Transaction{From: "x", To: "y", Ctx: "c", Outcome: 4, Now: 1}
	close(in)
	a.Run()
	processed, _, rejected := a.Stats()
	if processed != 2 || rejected != 1 {
		t.Fatalf("processed/rejected = %d/%d, want 2/1", processed, rejected)
	}
	if len(a.Errors()) != 1 {
		t.Fatalf("errors = %v", a.Errors())
	}
}

func TestAgentConstructorValidation(t *testing.T) {
	e := newTestEngine(t, defaultCfg())
	if _, err := NewAgent("a", nil, make(chan Transaction), nil); err == nil {
		t.Fatal("accepted nil engine")
	}
	if _, err := NewAgent("a", e, nil, nil); err == nil {
		t.Fatal("accepted nil channel")
	}
}

func TestMultipleAgentsSharedEngine(t *testing.T) {
	// Figure 1: several CD/RD agents feed one engine concurrently.
	e := newTestEngine(t, Config{Alpha: 1, Beta: 0, Smoothing: 0.5, InitialScore: 1})
	const agents, txPerAgent = 4, 100
	chans := make([]chan Transaction, agents)
	var wg sync.WaitGroup
	for i := range chans {
		chans[i] = make(chan Transaction, txPerAgent)
		a, err := NewAgent("agent", e, chans[i], nil)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() { defer wg.Done(); a.Run() }()
	}
	for i, ch := range chans {
		for k := 0; k < txPerAgent; k++ {
			ch <- Transaction{
				From: EntityID(rune('a' + i)), To: "target", Ctx: "c",
				Outcome: 4, Now: float64(k),
			}
		}
		close(ch)
	}
	wg.Wait()
	// Every agent's relationship should have converged toward 4.
	for i := 0; i < agents; i++ {
		g, err := e.Direct(EntityID(rune('a'+i)), "target", "c", float64(txPerAgent))
		if err != nil {
			t.Fatal(err)
		}
		if g < 3.9 || g > 4.1 {
			t.Fatalf("agent %d trust = %g, want ~4", i, g)
		}
	}
}
