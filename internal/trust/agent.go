package trust

import (
	"fmt"
	"sync"
)

// Transaction is one completed Grid-level interaction observed by a
// monitoring agent: truster x interacted with trustee y in context c at
// time Now and judged the behaviour Outcome on the [1,6] scale.
type Transaction struct {
	From    EntityID
	To      EntityID
	Ctx     Context
	Outcome float64
	Now     float64
}

// UpdateFunc is invoked by an Agent whenever a committed observation
// changes y's stored trust; score is the freshly computed Γ(x,y,now,c).
// The TRMS registers a hook here that quantises the score and writes the
// grid trust-level table ("if the new trust values they form are different
// from the existing values in the tables, the agents update the table",
// Section 3.1).
type UpdateFunc func(x, y EntityID, c Context, score float64)

// Agent is the CD/RD monitoring agent of Figure 1.  It consumes completed
// transactions from a channel, feeds them to the trust engine, and fires
// the update hook when the engine commits a revised trust level.  Run the
// agent with go a.Run(); stop it by closing the input channel.
type Agent struct {
	Name     string
	Engine   Model // any registered trust model; the default is *Engine
	In       <-chan Transaction
	OnUpdate UpdateFunc // optional

	mu        sync.Mutex
	processed int
	committed int
	errs      []error
}

// NewAgent wires an agent to a trust model and input channel.
func NewAgent(name string, e Model, in <-chan Transaction, onUpdate UpdateFunc) (*Agent, error) {
	if e == nil {
		return nil, fmt.Errorf("trust: agent %q requires an engine", name)
	}
	if in == nil {
		return nil, fmt.Errorf("trust: agent %q requires an input channel", name)
	}
	return &Agent{Name: name, Engine: e, In: in, OnUpdate: onUpdate}, nil
}

// Run processes transactions until the input channel closes.  It never
// panics on bad transactions; malformed outcomes are counted as errors and
// retrievable via Stats.
func (a *Agent) Run() {
	for tx := range a.In {
		changed, err := a.Engine.Observe(tx.From, tx.To, tx.Ctx, tx.Outcome, tx.Now)
		a.mu.Lock()
		a.processed++
		if err != nil {
			a.errs = append(a.errs, err)
			a.mu.Unlock()
			continue
		}
		if changed {
			a.committed++
		}
		a.mu.Unlock()
		if changed && a.OnUpdate != nil {
			score, terr := a.Engine.Trust(tx.From, tx.To, tx.Ctx, tx.Now)
			if terr == nil {
				a.OnUpdate(tx.From, tx.To, tx.Ctx, score)
			}
		}
	}
}

// Stats reports how many transactions the agent has processed, how many
// resulted in committed trust-level changes, and how many were rejected.
func (a *Agent) Stats() (processed, committed, rejected int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.processed, a.committed, len(a.errs)
}

// Errors returns a copy of the accumulated observation errors.
func (a *Agent) Errors() []error {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]error, len(a.errs))
	copy(out, a.errs)
	return out
}
