package trust

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
)

// Snapshot is the serialisable state of an Engine: every relationship
// record, recommender-factor override and alliance.  It lets a Grid domain
// persist its trust fabric across restarts and ship it to peers —
// "techniques for managing and evolving trust in a large-scale distributed
// system" (Section 7).  The engine's configuration (α, β, decay) is
// deliberately NOT serialised: it is policy, not state, and the importer
// chooses it.
type Snapshot struct {
	Version       int                  `json:"version"`
	Relationships []RelationshipRecord `json:"relationships"`
	Recommenders  []RecommenderRecord  `json:"recommenders,omitempty"`
	Alliances     [][2]EntityID        `json:"alliances,omitempty"`
}

// RelationshipRecord is one (truster, trustee, context) trust entry.
type RelationshipRecord struct {
	From   EntityID `json:"from"`
	To     EntityID `json:"to"`
	Ctx    Context  `json:"ctx"`
	Score  float64  `json:"score"`
	LastTx float64  `json:"last_tx"`
}

// RecommenderRecord is one explicit R(z,y) override.
type RecommenderRecord struct {
	From   EntityID `json:"from"`
	About  EntityID `json:"about"`
	Factor float64  `json:"factor"`
}

// snapshotVersion guards the wire format.
const snapshotVersion = 1

// ErrSnapshotVersion is the sentinel for snapshots whose wire format this
// build cannot read.  Callers match it with errors.Is; to learn which
// version was actually found, unwrap with errors.As into a
// *SnapshotVersionError.
var ErrSnapshotVersion = errors.New("trust: unsupported snapshot version")

// SnapshotVersionError reports the unsupported version encountered.  It
// matches ErrSnapshotVersion under errors.Is.
type SnapshotVersionError struct {
	Version int
}

func (e *SnapshotVersionError) Error() string {
	return fmt.Sprintf("trust: unsupported snapshot version %d (want %d)", e.Version, snapshotVersion)
}

// Is lets errors.Is(err, ErrSnapshotVersion) succeed on the typed error.
func (e *SnapshotVersionError) Is(target error) bool {
	return target == ErrSnapshotVersion
}

// Export captures the engine state.  Pending (uncommitted) observation
// batches are not exported: they are transient evidence, not trust.
func (e *Engine) Export() *Snapshot {
	e.mu.RLock()
	defer e.mu.RUnlock()
	snap := &Snapshot{Version: snapshotVersion}
	for k, rel := range e.rels {
		snap.Relationships = append(snap.Relationships, RelationshipRecord{
			From: k.from, To: k.to, Ctx: k.ctx,
			Score: rel.score, LastTx: rel.lastTx,
		})
	}
	for k, r := range e.rec {
		snap.Recommenders = append(snap.Recommenders, RecommenderRecord{
			From: k[0], About: k[1], Factor: r,
		})
	}
	seen := map[[2]EntityID]bool{}
	for k := range e.ally {
		a, b := k[0], k[1]
		if a > b {
			a, b = b, a
		}
		if !seen[[2]EntityID{a, b}] {
			seen[[2]EntityID{a, b}] = true
			snap.Alliances = append(snap.Alliances, [2]EntityID{a, b})
		}
	}
	// Sort for deterministic output.
	sort.Slice(snap.Relationships, func(i, j int) bool {
		a, b := snap.Relationships[i], snap.Relationships[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Ctx < b.Ctx
	})
	sort.Slice(snap.Recommenders, func(i, j int) bool {
		a, b := snap.Recommenders[i], snap.Recommenders[j]
		if a.From != b.From {
			return a.From < b.From
		}
		return a.About < b.About
	})
	sort.Slice(snap.Alliances, func(i, j int) bool {
		a, b := snap.Alliances[i], snap.Alliances[j]
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		return a[1] < b[1]
	})
	return snap
}

// Import installs a snapshot into the engine, replacing any overlapping
// records (non-overlapping existing state is preserved, enabling merges).
// Invalid records are rejected atomically before any mutation.
func (e *Engine) Import(snap *Snapshot) error {
	if snap == nil {
		return fmt.Errorf("trust: nil snapshot")
	}
	if snap.Version != snapshotVersion {
		return &SnapshotVersionError{Version: snap.Version}
	}
	for _, r := range snap.Relationships {
		if r.Score < MinScore || r.Score > MaxScore {
			return fmt.Errorf("trust: snapshot score %g for %s→%s outside scale", r.Score, r.From, r.To)
		}
	}
	for _, r := range snap.Recommenders {
		if r.Factor < 0 || r.Factor > 1 {
			return fmt.Errorf("trust: snapshot recommender factor %g outside [0,1]", r.Factor)
		}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, r := range snap.Relationships {
		e.peers[r.From], e.peers[r.To] = true, true
		e.rels[relKey{r.From, r.To, r.Ctx}] = &relationship{score: r.Score, lastTx: r.LastTx}
	}
	for _, r := range snap.Recommenders {
		e.peers[r.From], e.peers[r.About] = true, true
		e.rec[[2]EntityID{r.From, r.About}] = r.Factor
	}
	for _, a := range snap.Alliances {
		e.peers[a[0]], e.peers[a[1]] = true, true
		e.ally[[2]EntityID{a[0], a[1]}] = true
		e.ally[[2]EntityID{a[1], a[0]}] = true
	}
	return nil
}

// Save writes the engine state as indented JSON.
func (e *Engine) Save(w io.Writer) error {
	data, err := json.MarshalIndent(e.Export(), "", "  ")
	if err != nil {
		return fmt.Errorf("trust: marshal snapshot: %w", err)
	}
	data = append(data, '\n')
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("trust: write snapshot: %w", err)
	}
	return nil
}

// Load reads a JSON snapshot and imports it.
func (e *Engine) Load(r io.Reader) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("trust: read snapshot: %w", err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("trust: parse snapshot: %w", err)
	}
	return e.Import(&snap)
}
