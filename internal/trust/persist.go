package trust

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
)

// Snapshot is the serialisable state of an Engine: every relationship
// record, recommender-factor override and alliance.  It lets a Grid domain
// persist its trust fabric across restarts and ship it to peers —
// "techniques for managing and evolving trust in a large-scale distributed
// system" (Section 7).  The engine's configuration (α, β, decay) is
// deliberately NOT serialised: it is policy, not state, and the importer
// chooses it.
type Snapshot struct {
	Version       int                  `json:"version"`
	Relationships []RelationshipRecord `json:"relationships"`
	Recommenders  []RecommenderRecord  `json:"recommenders,omitempty"`
	Alliances     [][2]EntityID        `json:"alliances,omitempty"`

	// Model and ParamHash pin the trust model that produced the snapshot
	// (see model.go).  Importing under a different model returns
	// ErrModelMismatch: a purge-model snapshot replayed into a fuzzy
	// engine would silently compute different trust, so the mismatch is
	// typed and refused.  Empty Model (snapshots predating the zoo) is
	// accepted by every model.
	Model     string `json:"model,omitempty"`
	ParamHash string `json:"param_hash,omitempty"`

	// Counts carries the per-relationship observation tallies the rival
	// models keep beside the engine's scores (history/load/reliability
	// inputs).  The default engine neither produces nor consumes them.
	Counts []ObservationCount `json:"counts,omitempty"`
}

// ObservationCount is one (observer, subject, context) tally: how many
// outcomes were observed and how many were positive (≥ the scale
// midpoint).
type ObservationCount struct {
	From EntityID `json:"from"`
	To   EntityID `json:"to"`
	Ctx  Context  `json:"ctx"`
	N    int32    `json:"n"`
	Pos  int32    `json:"pos"`
}

// RelationshipRecord is one (truster, trustee, context) trust entry.
type RelationshipRecord struct {
	From   EntityID `json:"from"`
	To     EntityID `json:"to"`
	Ctx    Context  `json:"ctx"`
	Score  float64  `json:"score"`
	LastTx float64  `json:"last_tx"`
}

// RecommenderRecord is one explicit R(z,y) override.
type RecommenderRecord struct {
	From   EntityID `json:"from"`
	About  EntityID `json:"about"`
	Factor float64  `json:"factor"`
}

// snapshotVersion guards the wire format.
const snapshotVersion = 1

// ErrSnapshotVersion is the sentinel for snapshots whose wire format this
// build cannot read.  Callers match it with errors.Is; to learn which
// version was actually found, unwrap with errors.As into a
// *SnapshotVersionError.
var ErrSnapshotVersion = errors.New("trust: unsupported snapshot version")

// SnapshotVersionError reports the unsupported version encountered.  It
// matches ErrSnapshotVersion under errors.Is.
type SnapshotVersionError struct {
	Version int
}

func (e *SnapshotVersionError) Error() string {
	return fmt.Sprintf("trust: unsupported snapshot version %d (want %d)", e.Version, snapshotVersion)
}

// Is lets errors.Is(err, ErrSnapshotVersion) succeed on the typed error.
func (e *SnapshotVersionError) Is(target error) bool {
	return target == ErrSnapshotVersion
}

// ErrModelMismatch is the sentinel for snapshots produced by a different
// trust model than the importer.  Match with errors.Is; unwrap with
// errors.As into a *ModelMismatchError for the names involved.
var ErrModelMismatch = errors.New("trust: snapshot model mismatch")

// ModelMismatchError reports which model the snapshot was taken under and
// which model refused it.  It matches ErrModelMismatch under errors.Is.
type ModelMismatchError struct {
	Want string // the importing model
	Got  string // the model recorded in the snapshot
}

func (e *ModelMismatchError) Error() string {
	return fmt.Sprintf("trust: snapshot taken under model %q, importing model is %q", e.Got, e.Want)
}

// Is lets errors.Is(err, ErrModelMismatch) succeed on the typed error.
func (e *ModelMismatchError) Is(target error) bool {
	return target == ErrModelMismatch
}

// checkSnapshotModel validates a snapshot's model stamp against the
// importing model's name.  The empty stamp (pre-zoo snapshots) always
// passes.
func checkSnapshotModel(want string, snap *Snapshot) error {
	if snap.Model != "" && snap.Model != want {
		return &ModelMismatchError{Want: want, Got: snap.Model}
	}
	return nil
}

// Export captures the engine state.  Pending (uncommitted) observation
// batches are not exported: they are transient evidence, not trust.
func (e *Engine) Export() *Snapshot {
	e.mu.RLock()
	defer e.mu.RUnlock()
	snap := &Snapshot{
		Version:   snapshotVersion,
		Model:     DefaultModel,
		ParamHash: ParamHash(DefaultModel, e.ModelParams()),
	}
	for ri := range e.relLive {
		if !e.relLive[ri] {
			continue
		}
		snap.Relationships = append(snap.Relationships, RelationshipRecord{
			From: e.ents[e.relFrom[ri]], To: e.ents[e.relTo[ri]], Ctx: e.ctxs[e.relCtx[ri]],
			Score: e.relScore[ri], LastTx: e.relLastTx[ri],
		})
	}
	for zi, l := range e.rec {
		for _, re := range l {
			snap.Recommenders = append(snap.Recommenders, RecommenderRecord{
				From: e.ents[zi], About: e.ents[re.about], Factor: re.factor,
			})
		}
	}
	for ai, allies := range e.ally {
		for _, bi := range allies {
			a, b := e.ents[ai], e.ents[bi]
			if a <= b {
				snap.Alliances = append(snap.Alliances, [2]EntityID{a, b})
			}
		}
	}
	// Sort for deterministic output.
	sort.Slice(snap.Relationships, func(i, j int) bool {
		a, b := snap.Relationships[i], snap.Relationships[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Ctx < b.Ctx
	})
	sort.Slice(snap.Recommenders, func(i, j int) bool {
		a, b := snap.Recommenders[i], snap.Recommenders[j]
		if a.From != b.From {
			return a.From < b.From
		}
		return a.About < b.About
	})
	sort.Slice(snap.Alliances, func(i, j int) bool {
		a, b := snap.Alliances[i], snap.Alliances[j]
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		return a[1] < b[1]
	})
	return snap
}

// Import installs a snapshot into the engine, replacing any overlapping
// records (non-overlapping existing state is preserved, enabling merges).
// Invalid records are rejected atomically before any mutation.
func (e *Engine) Import(snap *Snapshot) error {
	if snap == nil {
		return fmt.Errorf("trust: nil snapshot")
	}
	if snap.Version != snapshotVersion {
		return &SnapshotVersionError{Version: snap.Version}
	}
	if err := checkSnapshotModel(DefaultModel, snap); err != nil {
		return err
	}
	for _, r := range snap.Relationships {
		if r.Score < MinScore || r.Score > MaxScore {
			return fmt.Errorf("trust: snapshot score %g for %s→%s outside scale", r.Score, r.From, r.To)
		}
	}
	for _, r := range snap.Recommenders {
		if r.Factor < 0 || r.Factor > 1 {
			return fmt.Errorf("trust: snapshot recommender factor %g outside [0,1]", r.Factor)
		}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, r := range snap.Relationships {
		xi, yi, ci := e.intern(r.From), e.intern(r.To), e.internCtx(r.Ctx)
		if ri, ok := e.findRel(xi, yi, ci); ok {
			e.relScore[ri], e.relLastTx[ri] = r.Score, r.LastTx
			e.relPendSum[ri], e.relPendCnt[ri] = 0, 0
			continue
		}
		e.newRel(xi, yi, ci, r.Score, r.LastTx)
	}
	for _, r := range snap.Recommenders {
		zi, yi := e.intern(r.From), e.intern(r.About)
		l := e.rec[zi]
		pos := sort.Search(len(l), func(i int) bool { return l[i].about >= yi })
		if pos < len(l) && l[pos].about == yi {
			l[pos].factor = r.Factor
			continue
		}
		l = append(l, recEdge{})
		copy(l[pos+1:], l[pos:])
		l[pos] = recEdge{about: yi, factor: r.Factor}
		e.rec[zi] = l
	}
	for _, a := range snap.Alliances {
		ai, bi := e.intern(a[0]), e.intern(a[1])
		insertAlly(&e.ally[ai], bi)
		insertAlly(&e.ally[bi], ai)
	}
	return nil
}

// Save writes the engine state as indented JSON.
func (e *Engine) Save(w io.Writer) error {
	data, err := json.MarshalIndent(e.Export(), "", "  ")
	if err != nil {
		return fmt.Errorf("trust: marshal snapshot: %w", err)
	}
	data = append(data, '\n')
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("trust: write snapshot: %w", err)
	}
	return nil
}

// Load reads a JSON snapshot and imports it.
func (e *Engine) Load(r io.Reader) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("trust: read snapshot: %w", err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("trust: parse snapshot: %w", err)
	}
	return e.Import(&snap)
}
