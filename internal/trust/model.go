package trust

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// Model is the trust policy interface: everything a consumer (core.TRMS,
// the simulation kernels, the fault studies, gridtrustd persistence) needs
// from a trust implementation.  The paper's Engine is the registered
// default ("paper"); rival models from the literature register alongside
// it and are selected by name through NewModel.
//
// Contract every implementation must honor:
//
//   - Observe / Trust / Direct / Recommendation semantics follow the
//     Engine's documented behavior (scores on [MinScore, MaxScore],
//     outcomes validated, strangers get the configured initial score).
//   - Determinism: identical call sequences produce bit-identical floats.
//     Any aggregation over multiple relationships must iterate in a
//     reproducible order — the Engine's incoming adjacency is presorted
//     by recommender EntityID string exactly for this, and rival models
//     reuse it via claimsAbout.  No map iteration may influence a result.
//   - Snapshot round-trip: Export must capture every score-relevant
//     datum; Import(Export()) into a fresh instance of the same model
//     must reproduce identical Trust values.  Snapshots are stamped with
//     ModelName/ParamHash; Import under a different model returns
//     ErrModelMismatch.
//   - Concurrency: all methods are safe for concurrent use.
type Model interface {
	// ModelName is the registered name ("paper", "purge", ...).
	ModelName() string
	// ModelParams is a canonical, human-readable parameter string; equal
	// configurations yield equal strings (it feeds ParamHash).
	ModelParams() string

	Observe(x, y EntityID, c Context, outcome, now float64) (bool, error)
	Trust(x, y EntityID, c Context, now float64) (float64, error)
	Direct(x, y EntityID, c Context, now float64) (float64, error)
	Recommendation(z, y EntityID, c Context, now float64) (float64, bool, error)
	SetDirect(x, y EntityID, c Context, score, now float64) error
	SetRecommenderFactor(z, y EntityID, r float64) error
	DeclareAlliance(a, b EntityID)
	Entities() []EntityID
	Relationships() int

	Export() *Snapshot
	Import(*Snapshot) error

	// UnderlyingEngine exposes the shared relationship store.  Every
	// registered model is engine-backed (the SoA store provides the
	// deterministic iteration contract); consumers that need raw engine
	// operations (alliances, pruning, journal capture) reach it here.
	UnderlyingEngine() *Engine
}

// DefaultModel names the paper's own trust function.
const DefaultModel = "paper"

// ModelInfo describes one registered trust model.
type ModelInfo struct {
	// Name is the registry key used by -trust-model flags and snapshots.
	Name string
	// Description is a one-line summary for -list output.
	Description string
	// New builds an instance from a Config.
	New func(Config) (Model, error)
}

var (
	modelMu  sync.RWMutex
	modelReg = map[string]ModelInfo{}
)

// RegisterModel adds a model to the registry.  It panics on duplicate or
// empty names — registration is an init-time programming act, not a
// runtime event.
func RegisterModel(info ModelInfo) {
	if info.Name == "" || info.New == nil {
		panic("trust: RegisterModel requires a name and a constructor")
	}
	modelMu.Lock()
	defer modelMu.Unlock()
	if _, dup := modelReg[info.Name]; dup {
		panic(fmt.Sprintf("trust: model %q registered twice", info.Name))
	}
	modelReg[info.Name] = info
}

// Models returns the registered models sorted by name — a deterministic
// listing for -list output and zoo sweeps.
func Models() []ModelInfo {
	modelMu.RLock()
	defer modelMu.RUnlock()
	out := make([]ModelInfo, 0, len(modelReg))
	for _, info := range modelReg {
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ModelNames returns the sorted registered model names.
func ModelNames() []string {
	models := Models()
	names := make([]string, len(models))
	for i, m := range models {
		names[i] = m.Name
	}
	return names
}

// KnownModel reports whether name is registered ("" counts: it resolves
// to the default).
func KnownModel(name string) bool {
	if name == "" {
		return true
	}
	modelMu.RLock()
	defer modelMu.RUnlock()
	_, ok := modelReg[name]
	return ok
}

// NewModel builds the named trust model from cfg.  The empty name selects
// DefaultModel, so zero-valued configurations everywhere keep the paper's
// engine bit-identically.
func NewModel(name string, cfg Config) (Model, error) {
	if name == "" {
		name = DefaultModel
	}
	modelMu.RLock()
	info, ok := modelReg[name]
	modelMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("trust: unknown model %q (registered: %v)", name, ModelNames())
	}
	return info.New(cfg)
}

// ParamHash condenses a model identity (name + canonical parameters) into
// a short stable hex string for snapshot/meta pinning.
func ParamHash(name, params string) string {
	h := fnv.New64a()
	h.Write([]byte(name))
	h.Write([]byte{'|'})
	h.Write([]byte(params))
	return fmt.Sprintf("%016x", h.Sum64())
}

func init() {
	RegisterModel(ModelInfo{
		Name:        DefaultModel,
		Description: "the paper's Γ = α·Θ + β·Ω with floor-anchored decayed reputation",
		New: func(cfg Config) (Model, error) {
			return NewEngine(cfg)
		},
	})
}

// ── Engine as the default Model ──────────────────────────────────────────

// ModelName identifies the Engine as the paper's own trust function.
func (e *Engine) ModelName() string { return DefaultModel }

// ModelParams renders the engine's configuration canonically.  The decay
// function is policy code, not a parameter value; only whether one is
// installed is represented.
func (e *Engine) ModelParams() string { return e.cfg.paramString(e.noDecay) }

// UnderlyingEngine returns the engine itself.
func (e *Engine) UnderlyingEngine() *Engine { return e }

// paramString is the canonical shared-parameter rendering every
// engine-backed model embeds in its ModelParams.
func (c Config) paramString(noDecay bool) string {
	decay := "custom"
	if noDecay {
		decay = "none"
	}
	return fmt.Sprintf("alpha=%g,beta=%g,init=%g,batch=%d,smooth=%g,purgebelow=%g,decay=%s",
		c.Alpha, c.Beta, c.InitialScore, c.UpdateBatch, c.Smoothing, c.PurgeBelow, decay)
}

// claim is one recommender's decayed statement about a trustee: the
// floor-anchored RTT(z,y,c)·Υ value and the recommender trust factor
// R(z,y) the consumer may weight it by.
type claim struct {
	peer   EntityID
	value  float64
	factor float64
}

// claimsAbout collects every recommender claim about y in context c at
// time now, excluding x (the asker) and y itself, in recommender
// EntityID string order — the deterministic iteration order rival models
// inherit from the engine's presorted incoming adjacency.  The buf slice
// is recycled when capacity allows.
func (e *Engine) claimsAbout(x, y EntityID, c Context, now float64, buf []claim) ([]claim, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := buf[:0]
	yi, oky := e.entIdx[y]
	ci, okc := e.ctxIdx[c]
	if !oky || !okc {
		return out, nil
	}
	xi := int32(-1)
	if i, ok := e.entIdx[x]; ok {
		xi = i
	}
	for _, ed := range e.in[yi] {
		if ed.ctx != ci || ed.peer == xi || ed.peer == yi {
			continue
		}
		d, err := e.decay(now-e.relLastTx[ed.rel], c)
		if err != nil {
			return nil, err
		}
		out = append(out, claim{
			peer:   e.ents[ed.peer],
			value:  MinScore + (e.relScore[ed.rel]-MinScore)*d,
			factor: e.recommenderFactor(ed.peer, yi),
		})
	}
	return out, nil
}

var _ Model = (*Engine)(nil)
