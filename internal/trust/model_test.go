package trust

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"sort"
	"sync"
	"testing"

	"gridtrust/internal/rng"
)

// TestModelRegistry checks the registry surface: sorted listings, the
// default resolution of the empty name, and rejection of unknown names.
func TestModelRegistry(t *testing.T) {
	names := ModelNames()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("ModelNames not sorted: %v", names)
	}
	for _, want := range []string{"bawa", "frtrust", DefaultModel, "purge"} {
		found := false
		for _, n := range names {
			found = found || n == want
		}
		if !found {
			t.Fatalf("model %q missing from registry: %v", want, names)
		}
	}
	if !KnownModel("") || !KnownModel(DefaultModel) {
		t.Fatal("empty and default model names must be known")
	}
	if KnownModel("no-such-model") {
		t.Fatal("unknown model reported known")
	}
	m, err := NewModel("", Config{Alpha: 0.5, Beta: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if m.ModelName() != DefaultModel {
		t.Fatalf("empty name resolved to %q, want %q", m.ModelName(), DefaultModel)
	}
	if _, ok := m.(*Engine); !ok {
		t.Fatalf("default model is %T, want *Engine", m)
	}
	if _, err := NewModel("no-such-model", Config{Alpha: 0.5, Beta: 0.5}); err == nil {
		t.Fatal("unknown model constructed without error")
	}
	for _, info := range Models() {
		if info.Description == "" {
			t.Fatalf("model %q has no description for -list output", info.Name)
		}
	}
}

// TestParamHashDistinguishesModels checks the snapshot pin actually pins:
// same inputs hash equal, different model names or parameters hash apart.
func TestParamHashDistinguishesModels(t *testing.T) {
	cfg := Config{Alpha: 0.5, Beta: 0.5}
	hashes := map[string]string{}
	for _, name := range ModelNames() {
		m, err := NewModel(name, cfg)
		if err != nil {
			t.Fatal(err)
		}
		h := ParamHash(m.ModelName(), m.ModelParams())
		if h != ParamHash(m.ModelName(), m.ModelParams()) {
			t.Fatalf("%s: ParamHash not stable", name)
		}
		if prev, dup := hashes[h]; dup {
			t.Fatalf("models %q and %q share param hash %s", prev, name, h)
		}
		hashes[h] = name
	}
	a, err := NewModel(DefaultModel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewModel(DefaultModel, Config{Alpha: 0.3, Beta: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if ParamHash(a.ModelName(), a.ModelParams()) == ParamHash(b.ModelName(), b.ModelParams()) {
		t.Fatal("different configurations share a param hash")
	}
}

// mutateModel drives a fixed mutation script covering every state kind a
// snapshot must carry: relationships, tallies, recommender factors and
// alliances.
func mutateModel(t *testing.T, m Model) {
	t.Helper()
	const c = Context("compute")
	ents := []EntityID{"a", "b", "c", "d"}
	now := 0.0
	for round := 0; round < 12; round++ {
		for i, x := range ents {
			y := ents[(i+1)%len(ents)]
			out := 1 + float64((round+i)%6)
			if _, err := m.Observe(x, y, c, out, now); err != nil {
				t.Fatal(err)
			}
			now++
		}
	}
	if err := m.SetDirect("a", "c", c, 2.5, now); err != nil {
		t.Fatal(err)
	}
	if err := m.SetRecommenderFactor("b", "c", 0.4); err != nil {
		t.Fatal(err)
	}
	m.DeclareAlliance("a", "d")
}

// TestModelSnapshotRoundTrip checks, per registered model, that a fresh
// instance fed Import(Export()) reproduces bit-identical Trust values and
// re-exports an identical snapshot.
func TestModelSnapshotRoundTrip(t *testing.T) {
	const c = Context("compute")
	ents := []EntityID{"a", "b", "c", "d"}
	for _, name := range ModelNames() {
		cfg := Config{Alpha: 0.4, Beta: 0.6, InitialScore: 3}
		m, err := NewModel(name, cfg)
		if err != nil {
			t.Fatal(err)
		}
		mutateModel(t, m)
		snap := m.Export()
		if snap.Model != name {
			t.Fatalf("%s: snapshot stamped %q", name, snap.Model)
		}
		if want := ParamHash(name, m.ModelParams()); snap.ParamHash != want {
			t.Fatalf("%s: snapshot param hash %s, want %s", name, snap.ParamHash, want)
		}
		fresh, err := NewModel(name, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := fresh.Import(snap); err != nil {
			t.Fatalf("%s: import: %v", name, err)
		}
		for _, x := range ents {
			for _, y := range ents {
				if x == y {
					continue
				}
				want, err := m.Trust(x, y, c, 60)
				if err != nil {
					t.Fatal(err)
				}
				got, err := fresh.Trust(x, y, c, 60)
				if err != nil {
					t.Fatal(err)
				}
				if math.Float64bits(want) != math.Float64bits(got) {
					t.Fatalf("%s: Trust(%s,%s) diverges after round-trip: %v vs %v", name, x, y, want, got)
				}
			}
		}
		if !reflect.DeepEqual(fresh.Export(), snap) {
			t.Fatalf("%s: re-export diverges from imported snapshot", name)
		}
	}
}

// TestModelMismatchTyped checks every cross-model import is refused with
// the typed sentinel: errors.Is matches ErrModelMismatch and errors.As
// recovers the names involved.
func TestModelMismatchTyped(t *testing.T) {
	cfg := Config{Alpha: 0.5, Beta: 0.5}
	for _, from := range ModelNames() {
		src, err := NewModel(from, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := src.Observe("a", "b", "compute", 4, 0); err != nil {
			t.Fatal(err)
		}
		snap := src.Export()
		for _, to := range ModelNames() {
			dst, err := NewModel(to, cfg)
			if err != nil {
				t.Fatal(err)
			}
			err = dst.Import(snap)
			if to == from {
				if err != nil {
					t.Fatalf("%s: same-model import refused: %v", to, err)
				}
				continue
			}
			if err == nil {
				t.Fatalf("%s accepted a %s snapshot", to, from)
			}
			if !errors.Is(err, ErrModelMismatch) {
				t.Fatalf("%s←%s: error %v does not match ErrModelMismatch", to, from, err)
			}
			var mm *ModelMismatchError
			if !errors.As(err, &mm) {
				t.Fatalf("%s←%s: error %v is not a *ModelMismatchError", to, from, err)
			}
			if mm.Want != to || mm.Got != from {
				t.Fatalf("%s←%s: mismatch names want=%q got=%q", to, from, mm.Want, mm.Got)
			}
		}
	}
}

// TestModelAcceptsUnstampedSnapshot checks backward compatibility: a
// snapshot predating the zoo (no model stamp) imports into every model.
func TestModelAcceptsUnstampedSnapshot(t *testing.T) {
	cfg := Config{Alpha: 0.5, Beta: 0.5}
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Observe("a", "b", "compute", 5, 0); err != nil {
		t.Fatal(err)
	}
	snap := eng.Export()
	snap.Model, snap.ParamHash = "", ""
	for _, name := range ModelNames() {
		m, err := NewModel(name, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Import(snap); err != nil {
			t.Fatalf("%s refused an unstamped snapshot: %v", name, err)
		}
	}
}

// TestModelConcurrentDeterminism hammers each model from parallel
// goroutines working disjoint relationships, then checks the final scores
// are bit-identical to a sequential replay — concurrency must affect
// throughput, never results.  Under -race this also proves the locking.
func TestModelConcurrentDeterminism(t *testing.T) {
	const (
		workers = 4
		steps   = 150
		c       = Context("compute")
	)
	for _, name := range ModelNames() {
		cfg := Config{Alpha: 0.5, Beta: 0.5, InitialScore: 3.5}
		par, err := NewModel(name, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for g := 0; g < workers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				x := EntityID(fmt.Sprintf("w:%d", g))
				y := EntityID(fmt.Sprintf("r:%d", g))
				for i := 0; i < steps; i++ {
					if _, err := par.Observe(x, y, c, 1+float64(i%6), float64(i)); err != nil {
						t.Errorf("%s: observe: %v", name, err)
						return
					}
					v, err := par.Trust(x, y, c, float64(i))
					if err != nil || v < MinScore || v > MaxScore {
						t.Errorf("%s: trust %v (%v)", name, v, err)
						return
					}
				}
			}(g)
		}
		wg.Wait()
		seq, err := NewModel(name, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for g := 0; g < workers; g++ {
			x := EntityID(fmt.Sprintf("w:%d", g))
			y := EntityID(fmt.Sprintf("r:%d", g))
			for i := 0; i < steps; i++ {
				if _, err := seq.Observe(x, y, c, 1+float64(i%6), float64(i)); err != nil {
					t.Fatal(err)
				}
			}
		}
		for g := 0; g < workers; g++ {
			x := EntityID(fmt.Sprintf("w:%d", g))
			y := EntityID(fmt.Sprintf("r:%d", g))
			want, err := seq.Trust(x, y, c, steps)
			if err != nil {
				t.Fatal(err)
			}
			got, err := par.Trust(x, y, c, steps)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(want) != math.Float64bits(got) {
				t.Fatalf("%s: concurrent run diverges from sequential for %s→%s: %v vs %v", name, x, y, want, got)
			}
		}
	}
}

// TestModelDeterministicAcrossInstances replays one random program into
// two instances of each model and requires bit-identical trust readings —
// the per-model determinism contract the sim kernels rely on.
func TestModelDeterministicAcrossInstances(t *testing.T) {
	for _, name := range ModelNames() {
		cfg := Config{Alpha: 0.3, Beta: 0.7, InitialScore: 3.5}
		ops := randomTrustProgram(rng.New(4242), 300)
		run := func() []float64 {
			m, err := NewModel(name, cfg)
			if err != nil {
				t.Fatal(err)
			}
			now := 0.0
			var out []float64
			for _, o := range ops {
				now += o.dt
				x := equivEntities[o.x%len(equivEntities)]
				y := equivEntities[o.y%len(equivEntities)]
				c := equivContexts[o.c%len(equivContexts)]
				switch o.op % topCount {
				case topObserve:
					if _, err := m.Observe(x, y, c, o.val, now); err != nil {
						t.Fatal(err)
					}
				default:
					v, err := m.Trust(x, y, c, now)
					if err != nil {
						t.Fatal(err)
					}
					out = append(out, v)
				}
			}
			return out
		}
		a, b := run(), run()
		if len(a) != len(b) {
			t.Fatalf("%s: runs produced %d vs %d readings", name, len(a), len(b))
		}
		for i := range a {
			if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
				t.Fatalf("%s: reading %d diverges: %v vs %v", name, i, a[i], b[i])
			}
		}
	}
}
