package trace

import (
	"strings"
	"testing"
)

func sampleTrace() *Trace {
	var tr Trace
	tr.Add(Event{Time: 0, Kind: Arrival, Request: 0, Machine: -1})
	tr.Add(Event{Time: 0, Kind: Scheduled, Request: 0, Machine: 0, Cost: 10})
	tr.Add(Event{Time: 0, Kind: Start, Request: 0, Machine: 0, Cost: 10})
	tr.Add(Event{Time: 5, Kind: Arrival, Request: 1, Machine: -1})
	tr.Add(Event{Time: 5, Kind: Scheduled, Request: 1, Machine: 1, Cost: 10})
	tr.Add(Event{Time: 5, Kind: Start, Request: 1, Machine: 1, Cost: 10})
	tr.Add(Event{Time: 10, Kind: Finish, Request: 0, Machine: 0, Cost: 10})
	tr.Add(Event{Time: 15, Kind: Finish, Request: 1, Machine: 1, Cost: 10})
	return &tr
}

func TestEventsAndByKind(t *testing.T) {
	tr := sampleTrace()
	if tr.Len() != 8 {
		t.Fatalf("len = %d", tr.Len())
	}
	if got := len(tr.ByKind(Arrival)); got != 2 {
		t.Fatalf("arrivals = %d", got)
	}
	if got := len(tr.ByKind(BatchTick)); got != 0 {
		t.Fatalf("batch ticks = %d", got)
	}
	evs := tr.Events()
	evs[0].Time = 99
	if tr.Events()[0].Time == 99 {
		t.Fatal("Events aliases internal storage")
	}
}

func TestSpansPairing(t *testing.T) {
	tr := sampleTrace()
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %v", spans)
	}
	if spans[0].Request != 0 || spans[0].Start != 0 || spans[0].End != 10 || spans[0].Machine != 0 {
		t.Fatalf("span 0 = %+v", spans[0])
	}
	if spans[1].Request != 1 || spans[1].Start != 5 || spans[1].End != 15 {
		t.Fatalf("span 1 = %+v", spans[1])
	}
}

func TestSpansDropIncomplete(t *testing.T) {
	var tr Trace
	tr.Add(Event{Time: 0, Kind: Start, Request: 0, Machine: 0})
	// Never finishes; and a finish without a start:
	tr.Add(Event{Time: 5, Kind: Finish, Request: 9, Machine: 0})
	if got := tr.Spans(); len(got) != 0 {
		t.Fatalf("spans = %v", got)
	}
}

func TestGanttRendering(t *testing.T) {
	tr := sampleTrace()
	g := tr.Gantt(2, 40)
	if g == "" {
		t.Fatal("empty gantt")
	}
	lines := strings.Split(strings.TrimSpace(g), "\n")
	if len(lines) != 3 {
		t.Fatalf("gantt lines = %d:\n%s", len(lines), g)
	}
	if !strings.HasPrefix(lines[1], "M0") || !strings.HasPrefix(lines[2], "M1") {
		t.Fatalf("machine rows mislabeled:\n%s", g)
	}
	// Machine 0 ran request 0 in the first two-thirds; machine 1 ran
	// request 1 starting at a third.
	if !strings.Contains(lines[1], "0") || !strings.Contains(lines[2], "1") {
		t.Fatalf("request digits missing:\n%s", g)
	}
	// Machine 1 idles before request 1 starts.
	m1 := lines[2]
	if !strings.Contains(m1[:10], ".") {
		t.Fatalf("no idle marker at start of M1:\n%s", g)
	}
}

func TestGanttDegenerateInputs(t *testing.T) {
	tr := sampleTrace()
	if tr.Gantt(0, 40) != "" || tr.Gantt(2, 4) != "" {
		t.Fatal("degenerate dimensions should render nothing")
	}
	var empty Trace
	if empty.Gantt(2, 40) != "" {
		t.Fatal("empty trace should render nothing")
	}
}

func TestWriteCSV(t *testing.T) {
	tr := sampleTrace()
	var sb strings.Builder
	if err := tr.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "time,kind,request,machine,cost\n") {
		t.Fatalf("csv header wrong:\n%s", out)
	}
	if !strings.Contains(out, "10.000,finish,0,0,10.000") {
		t.Fatalf("csv rows wrong:\n%s", out)
	}
	if got := strings.Count(out, "\n"); got != 9 {
		t.Fatalf("csv has %d lines", got)
	}
}

func TestStats(t *testing.T) {
	tr := sampleTrace()
	counts, busy := tr.Stats(2)
	if counts[Arrival] != 2 || counts[Finish] != 2 {
		t.Fatalf("counts = %v", counts)
	}
	// 20 busy units over 15 time units on 2 machines = 2/3.
	if busy < 0.66 || busy > 0.67 {
		t.Fatalf("busy fraction = %g", busy)
	}
	var empty Trace
	if _, b := empty.Stats(2); b != 0 {
		t.Fatal("empty trace busy fraction should be 0")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		Arrival: "arrival", Scheduled: "scheduled", Start: "start",
		Finish: "finish", BatchTick: "batch-tick",
		Failure: "failure", Requeue: "requeue",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", int(k), k.String())
		}
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind string empty")
	}
}

func TestParseKindRoundTrip(t *testing.T) {
	for k := Arrival; k <= Requeue; k++ {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("explode"); err == nil {
		t.Error("ParseKind accepted garbage")
	}
}

// faultTrace is a timeline with a crash mid-task and the rescheduled
// execution on another machine.
func faultTrace() *Trace {
	var tr Trace
	tr.Add(Event{Time: 0, Kind: Arrival, Request: 0, Machine: -1})
	tr.Add(Event{Time: 0, Kind: Scheduled, Request: 0, Machine: 0, Cost: 10})
	tr.Add(Event{Time: 0, Kind: Start, Request: 0, Machine: 0, Cost: 10})
	tr.Add(Event{Time: 4, Kind: Failure, Request: 0, Machine: 0, Cost: 6})
	tr.Add(Event{Time: 4, Kind: Requeue, Request: 0, Machine: 0})
	tr.Add(Event{Time: 4, Kind: Scheduled, Request: 0, Machine: 1, Cost: 12})
	tr.Add(Event{Time: 4, Kind: Start, Request: 0, Machine: 1, Cost: 12})
	tr.Add(Event{Time: 16, Kind: Finish, Request: 0, Machine: 1, Cost: 12})
	return &tr
}

func TestReadCSVRoundTrip(t *testing.T) {
	tr := faultTrace()
	var sb strings.Builder
	if err := tr.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	want := tr.Events()
	got := back.Events()
	if len(got) != len(want) {
		t.Fatalf("round-trip length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d round-tripped as %+v, want %+v", i, got[i], want[i])
		}
	}
	// The CSV itself must name the fault kinds.
	if !strings.Contains(sb.String(), "4.000,failure,0,0,6.000") ||
		!strings.Contains(sb.String(), "4.000,requeue,0,0,0.000") {
		t.Fatalf("fault rows missing:\n%s", sb.String())
	}
}

func TestReadCSVRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"wrong,header\n",
		"time,kind,request,machine,cost\n1.0,arrival,0\n",
		"time,kind,request,machine,cost\n1.0,nope,0,-1,0\n",
		"time,kind,request,machine,cost\nx,arrival,0,-1,0\n",
	}
	for i, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestGanttFailureMarker(t *testing.T) {
	tr := faultTrace()
	g := tr.Gantt(2, 40)
	if g == "" {
		t.Fatal("empty gantt")
	}
	lines := strings.Split(strings.TrimSpace(g), "\n")
	// The crash at t=4 on machine 0 lands at column 40*4/16 = 10.
	m0 := strings.TrimPrefix(lines[1], "M0   |")
	if m0[10] != 'x' {
		t.Fatalf("no crash marker on M0 at column 10:\n%s", g)
	}
	if strings.Contains(lines[2], "x") {
		t.Fatalf("crash marker leaked onto M1:\n%s", g)
	}
}
