// Package trace records simulation execution events (arrivals, scheduling
// decisions, task starts and finishes, batch ticks) and renders them as
// CSV or as a text Gantt chart.  Traces make individual runs inspectable:
// the paper reports aggregates, but debugging a heuristic or explaining a
// surprising improvement number needs the per-task timeline.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind classifies a trace event.
type Kind int

// The event kinds emitted by the simulator.
const (
	// Arrival: a request entered the system.
	Arrival Kind = iota
	// Scheduled: the mapper committed a request to a machine.
	Scheduled
	// Start: a machine began executing a request.
	Start
	// Finish: a machine completed a request.
	Finish
	// BatchTick: a batch-mode meta-request was dispatched.
	BatchTick
	// Failure: a machine crashed; Request is the in-flight request it
	// lost (-1 if it was idle), Cost the scheduled repair time.
	Failure
	// Requeue: a crashed machine's request re-entered the scheduler
	// queue with its original RTL.
	Requeue
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Arrival:
		return "arrival"
	case Scheduled:
		return "scheduled"
	case Start:
		return "start"
	case Finish:
		return "finish"
	case BatchTick:
		return "batch-tick"
	case Failure:
		return "failure"
	case Requeue:
		return "requeue"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind is the inverse of String, for reading traces back.
func ParseKind(s string) (Kind, error) {
	for k := Arrival; k <= Requeue; k++ {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("trace: unknown event kind %q", s)
}

// Event is one timeline record.  Request and Machine are -1 when not
// applicable (e.g. batch ticks carry no single request).
type Event struct {
	Time    float64
	Kind    Kind
	Request int
	Machine int
	// Cost carries the charged ECC for Start/Finish events, the batch
	// size for BatchTick.
	Cost float64
}

// Trace collects events in emission order.  It is not safe for concurrent
// use; a simulation is single-threaded (parallelism is across runs).
type Trace struct {
	events []Event
}

// Add appends one event.
func (t *Trace) Add(e Event) { t.events = append(t.events, e) }

// Reset clears the trace while keeping the event buffer's capacity, so a
// caller replaying many runs (e.g. one trace per replication) records
// into the same backing array instead of regrowing it each time.
func (t *Trace) Reset() { t.events = t.events[:0] }

// Events returns the recorded events in order.
func (t *Trace) Events() []Event {
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// Len returns the number of recorded events.
func (t *Trace) Len() int { return len(t.events) }

// ByKind returns the events of one kind, in order.
func (t *Trace) ByKind(k Kind) []Event {
	var out []Event
	for _, e := range t.events {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// Span is one executed task interval on a machine.
type Span struct {
	Request    int
	Machine    int
	Start, End float64
}

// Spans pairs Start/Finish events per request into execution intervals.
// Incomplete pairs (started but never finished) are dropped.
func (t *Trace) Spans() []Span {
	starts := make(map[int]Event)
	var out []Span
	for _, e := range t.events {
		switch e.Kind {
		case Start:
			starts[e.Request] = e
		case Finish:
			if s, ok := starts[e.Request]; ok && s.Machine == e.Machine {
				out = append(out, Span{
					Request: e.Request, Machine: e.Machine,
					Start: s.Time, End: e.Time,
				})
				delete(starts, e.Request)
			}
		}
	}
	return out
}

// WriteCSV emits the trace as time,kind,request,machine,cost rows.
func (t *Trace) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "time,kind,request,machine,cost"); err != nil {
		return err
	}
	for _, e := range t.events {
		if _, err := fmt.Fprintf(w, "%.3f,%s,%d,%d,%.3f\n",
			e.Time, e.Kind, e.Request, e.Machine, e.Cost); err != nil {
			return err
		}
	}
	return nil
}

// ReadCSV parses a trace previously emitted by WriteCSV, including the
// header line.  Times and costs round-trip at WriteCSV's millisecond
// precision.
func ReadCSV(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	if !sc.Scan() {
		return nil, fmt.Errorf("trace: empty CSV")
	}
	if got := strings.TrimSpace(sc.Text()); got != "time,kind,request,machine,cost" {
		return nil, fmt.Errorf("trace: unexpected CSV header %q", got)
	}
	t := &Trace{}
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) != 5 {
			return nil, fmt.Errorf("trace: line %d has %d fields, want 5", line, len(fields))
		}
		var e Event
		var err error
		if e.Time, err = strconv.ParseFloat(fields[0], 64); err != nil {
			return nil, fmt.Errorf("trace: line %d time: %w", line, err)
		}
		if e.Kind, err = ParseKind(fields[1]); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		if e.Request, err = strconv.Atoi(fields[2]); err != nil {
			return nil, fmt.Errorf("trace: line %d request: %w", line, err)
		}
		if e.Machine, err = strconv.Atoi(fields[3]); err != nil {
			return nil, fmt.Errorf("trace: line %d machine: %w", line, err)
		}
		if e.Cost, err = strconv.ParseFloat(fields[4], 64); err != nil {
			return nil, fmt.Errorf("trace: line %d cost: %w", line, err)
		}
		t.Add(e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read CSV: %w", err)
	}
	return t, nil
}

// Gantt renders the trace's execution spans as a text chart, one row per
// machine, width columns wide.  Each span is drawn with the request id's
// last digit; '.' marks idle time and 'x' marks a machine crash.  Returns
// an empty string when the trace holds no spans.
func (t *Trace) Gantt(machines, width int) string {
	if machines <= 0 || width <= 8 {
		return ""
	}
	spans := t.Spans()
	if len(spans) == 0 {
		return ""
	}
	tMax := 0.0
	for _, s := range spans {
		if s.End > tMax {
			tMax = s.End
		}
	}
	if tMax <= 0 {
		return ""
	}
	rows := make([][]byte, machines)
	for m := range rows {
		rows[m] = []byte(strings.Repeat(".", width))
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	scale := float64(width) / tMax
	for _, s := range spans {
		if s.Machine < 0 || s.Machine >= machines {
			continue
		}
		lo := int(math.Floor(s.Start * scale))
		hi := int(math.Ceil(s.End * scale))
		if hi <= lo {
			hi = lo + 1
		}
		if hi > width {
			hi = width
		}
		ch := byte('0' + s.Request%10)
		for c := lo; c < hi; c++ {
			rows[s.Machine][c] = ch
		}
	}
	// Crashes overwrite whatever was drawn: the failure is the thing the
	// chart must not hide.
	for _, e := range t.events {
		if e.Kind != Failure || e.Machine < 0 || e.Machine >= machines {
			continue
		}
		c := int(math.Floor(e.Time * scale))
		if c >= width {
			c = width - 1
		}
		if c < 0 {
			c = 0
		}
		rows[e.Machine][c] = 'x'
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "time 0 %s %.1f\n", strings.Repeat(" ", width-10), tMax)
	for m, row := range rows {
		fmt.Fprintf(&sb, "M%-3d |%s|\n", m, row)
	}
	return sb.String()
}

// Stats summarises a trace: counts per kind and the busy fraction implied
// by the spans.
func (t *Trace) Stats(machines int) (counts map[Kind]int, busyFraction float64) {
	counts = make(map[Kind]int)
	for _, e := range t.events {
		counts[e.Kind]++
	}
	spans := t.Spans()
	if len(spans) == 0 || machines <= 0 {
		return counts, 0
	}
	var busy, tMax float64
	for _, s := range spans {
		busy += s.End - s.Start
		if s.End > tMax {
			tMax = s.End
		}
	}
	if tMax == 0 {
		return counts, 0
	}
	return counts, busy / (tMax * float64(machines))
}
