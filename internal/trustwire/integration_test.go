package trustwire_test

import (
	"sync"
	"testing"
	"time"

	"gridtrust/internal/grid"
	"gridtrust/internal/trustwire"
)

// TestReplicatedTableEndToEnd is the examples/replicatedtable flow as a
// real test: a central authoritative table served over TCP, two remote
// replicas cold-syncing, a central revision, and poll-loop convergence.
// It is the integration contract the fleet's trust gossip builds on.
func TestReplicatedTableEndToEnd(t *testing.T) {
	table := grid.NewTrustTable()
	seed := map[grid.Activity]grid.TrustLevel{
		grid.ActCompute: grid.LevelC,
		grid.ActStorage: grid.LevelD,
	}
	for act, tl := range seed {
		if err := table.Set(0, 1, act, tl); err != nil {
			t.Fatal(err)
		}
	}
	srv, err := trustwire.NewServer(table, 4, 4, grid.NumBuiltinActivities)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Two remote domains dial in and cold-sync a full snapshot.
	replicas := make([]*trustwire.Replica, 2)
	for i := range replicas {
		rep, err := trustwire.Dial(addr.String())
		if err != nil {
			t.Fatal(err)
		}
		defer rep.Close()
		if _, err := rep.Sync(); err != nil {
			t.Fatalf("replica %d cold sync: %v", i, err)
		}
		replicas[i] = rep
		if tl, ok := rep.Table().Get(0, 1, grid.ActCompute); !ok || tl != grid.LevelC {
			t.Fatalf("replica %d cold-synced (0,1,compute) = %v/%v, want LevelC", i, tl, ok)
		}
		if rep.Version() != table.Version() {
			t.Fatalf("replica %d at version %d, table at %d", i, rep.Version(), table.Version())
		}
	}

	// A remote scheduler computes an OTL from its replica without any
	// network traffic: min over the ToA = min(C, D) = C.
	toa := grid.MustToA(grid.ActCompute, grid.ActStorage)
	otl, err := replicas[0].Table().OTL(0, 1, toa)
	if err != nil {
		t.Fatal(err)
	}
	if otl != grid.LevelC {
		t.Fatalf("replica OTL = %v, want LevelC", otl)
	}

	// A monitoring agent revises trust at the centre; poll loops must
	// converge both replicas.
	if err := table.Set(0, 1, grid.ActCompute, grid.LevelE); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, rep := range replicas {
		wg.Add(1)
		go func(rep *trustwire.Replica) {
			defer wg.Done()
			rep.Poll(2*time.Millisecond, stop, nil)
		}(rep)
	}
	deadline := time.Now().Add(5 * time.Second)
	for i, rep := range replicas {
		for {
			if tl, ok := rep.Table().Get(0, 1, grid.ActCompute); ok && tl == grid.LevelE {
				break
			}
			if time.Now().After(deadline) {
				close(stop)
				t.Fatalf("replica %d did not converge to the revised level", i)
			}
			time.Sleep(time.Millisecond)
		}
	}
	close(stop)
	wg.Wait()

	for i, rep := range replicas {
		if rep.Version() != table.Version() {
			t.Fatalf("replica %d converged at version %d, table at %d", i, rep.Version(), table.Version())
		}
		if rep.SnapshotsApplied() < 1 {
			t.Fatalf("replica %d applied no snapshots", i)
		}
	}
	if srv.SnapshotsServed() < 2 {
		t.Fatalf("server served %d snapshots, want >= 2 (one cold sync per replica)", srv.SnapshotsServed())
	}
	// The post-revision catch-ups within the history window must have
	// travelled as deltas, not full snapshots.
	if srv.DeltasServed() < 1 {
		t.Fatalf("server served no deltas; revision catch-up fell back to snapshots")
	}
}
