package trustwire

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"
)

// Replica maintains a local read-only copy of a remote trust table by
// polling a Server.  Schedulers at a remote Grid domain read the replica
// (a *grid.TrustTable) with zero network traffic on the hot path; the
// poll loop refreshes it in the background.
type Replica struct {
	mu      sync.Mutex
	conn    net.Conn
	r       *bufio.Reader
	version uint64
	synced  int64 // snapshots applied
	closed  bool

	// addr and timeout enable redial and per-round deadlines.  Both are
	// zero for NewReplica-wrapped connections, preserving the original
	// no-deadline, no-redial behavior on that path.
	addr    string
	timeout time.Duration

	local *replicaTable
}

// Dial connects a replica to a server address with no I/O deadlines.
func Dial(addr string) (*Replica, error) {
	return DialTimeout(addr, 0)
}

// DialTimeout connects a replica to a server address.  A non-zero
// timeout bounds the dial and every subsequent Sync round trip, and
// arms redial: after a transport error the broken conn is dropped and
// the next Sync dials afresh, so one black-holed round costs at most
// one timeout and the replica self-heals when the peer returns.
func DialTimeout(addr string, timeout time.Duration) (*Replica, error) {
	c := &Replica{
		addr:    addr,
		timeout: timeout,
		local:   newReplicaTable(),
	}
	if err := c.redialLocked(); err != nil {
		return nil, err
	}
	return c, nil
}

// NewReplica wraps an established connection (e.g. one side of net.Pipe
// in tests).
func NewReplica(conn net.Conn) *Replica {
	return &Replica{
		conn:  conn,
		r:     bufio.NewReaderSize(conn, 64<<10),
		local: newReplicaTable(),
	}
}

// redialLocked (re)establishes the connection.  Callers hold mu, or own
// the Replica exclusively (DialTimeout).
func (c *Replica) redialLocked() error {
	conn, err := net.DialTimeout("tcp", c.addr, c.timeout)
	if err != nil {
		return fmt.Errorf("trustwire: dial %s: %w", c.addr, err)
	}
	c.conn = conn
	c.r = bufio.NewReaderSize(conn, 64<<10)
	return nil
}

// dropConnLocked discards a connection a transport error has made
// untrustworthy; the next Sync redials if an address is known.
func (c *Replica) dropConnLocked() {
	if c.conn != nil {
		_ = c.conn.Close()
		c.conn = nil
		c.r = nil
	}
}

// Close releases the connection.
func (c *Replica) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	c.r = nil
	return err
}

// Version returns the last applied table version.
func (c *Replica) Version() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.version
}

// SnapshotsApplied reports how many snapshots this replica has installed.
func (c *Replica) SnapshotsApplied() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.synced
}

// Sync performs one poll round-trip: if the server is ahead, the full
// snapshot replaces the local copy atomically.  It reports whether new
// data was applied.  With a timeout configured the whole round trip is
// deadline-bounded, and a transport error drops the connection so the
// next Sync redials — a partitioned peer costs one bounded round per
// poll, never a wedged goroutine.
func (c *Replica) Sync() (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return false, net.ErrClosed
	}
	if c.conn == nil {
		if c.addr == "" {
			return false, net.ErrClosed
		}
		if err := c.redialLocked(); err != nil {
			return false, err
		}
	}
	if c.timeout > 0 {
		if err := c.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
			c.dropConnLocked()
			return false, err
		}
	}
	if err := writeFrame(c.conn, Request{Op: OpSync, HaveVersion: c.version}); err != nil {
		c.dropConnLocked()
		return false, err
	}
	var resp Response
	if err := readFrame(c.r, &resp); err != nil {
		c.dropConnLocked()
		return false, err
	}
	switch resp.Status {
	case StatusCurrent:
		return false, nil
	case StatusSnapshot:
		fresh := newReplicaTable()
		if err := applyEntries(fresh.table, resp.Entries); err != nil {
			return false, err
		}
		c.local = fresh
		c.version = resp.Version
		c.synced++
		return true, nil
	case StatusDelta:
		// Overlay the changed entries on a copy of the current local
		// table so readers still see atomic swaps.
		fresh := newReplicaTable()
		if err := copyTable(c.local, fresh, resp.Entries); err != nil {
			return false, err
		}
		c.local = fresh
		c.version = resp.Version
		c.synced++
		return true, nil
	case StatusError:
		return false, fmt.Errorf("trustwire: server error: %s", resp.Error)
	default:
		return false, fmt.Errorf("trustwire: unknown response status %q", resp.Status)
	}
}

// Poll runs Sync every interval until stop is closed, delivering any sync
// error to errs (non-blocking; errors are dropped if nobody listens).
// Errors do not end the loop: replication is anti-entropy, so the next
// tick retries (and, when the replica knows its address, redials) —
// a transient peer failure must never silently kill replication for the
// rest of the process lifetime.
func (c *Replica) Poll(interval time.Duration, stop <-chan struct{}, errs chan<- error) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			if _, err := c.Sync(); err != nil {
				select {
				case errs <- err:
				default:
				}
			}
		}
	}
}

// Table returns the current local copy for reading.  The returned table
// must be treated as read-only; it is replaced wholesale on the next
// applied snapshot, so a scheduler can safely keep using the instance it
// grabbed for one mapping pass.
func (c *Replica) Table() ReadOnlyTable {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.local
}
