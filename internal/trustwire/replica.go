package trustwire

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"
)

// Replica maintains a local read-only copy of a remote trust table by
// polling a Server.  Schedulers at a remote Grid domain read the replica
// (a *grid.TrustTable) with zero network traffic on the hot path; the
// poll loop refreshes it in the background.
type Replica struct {
	mu      sync.Mutex
	conn    net.Conn
	r       *bufio.Reader
	version uint64
	synced  int64 // snapshots applied

	local *replicaTable
}

// Dial connects a replica to a server address.
func Dial(addr string) (*Replica, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("trustwire: dial %s: %w", addr, err)
	}
	return NewReplica(conn), nil
}

// NewReplica wraps an established connection (e.g. one side of net.Pipe
// in tests).
func NewReplica(conn net.Conn) *Replica {
	return &Replica{
		conn:  conn,
		r:     bufio.NewReaderSize(conn, 64<<10),
		local: newReplicaTable(),
	}
}

// Close releases the connection.
func (c *Replica) Close() error { return c.conn.Close() }

// Version returns the last applied table version.
func (c *Replica) Version() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.version
}

// SnapshotsApplied reports how many snapshots this replica has installed.
func (c *Replica) SnapshotsApplied() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.synced
}

// Sync performs one poll round-trip: if the server is ahead, the full
// snapshot replaces the local copy atomically.  It reports whether new
// data was applied.
func (c *Replica) Sync() (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := writeFrame(c.conn, Request{Op: OpSync, HaveVersion: c.version}); err != nil {
		return false, err
	}
	var resp Response
	if err := readFrame(c.r, &resp); err != nil {
		return false, err
	}
	switch resp.Status {
	case StatusCurrent:
		return false, nil
	case StatusSnapshot:
		fresh := newReplicaTable()
		if err := applyEntries(fresh.table, resp.Entries); err != nil {
			return false, err
		}
		c.local = fresh
		c.version = resp.Version
		c.synced++
		return true, nil
	case StatusDelta:
		// Overlay the changed entries on a copy of the current local
		// table so readers still see atomic swaps.
		fresh := newReplicaTable()
		if err := copyTable(c.local, fresh, resp.Entries); err != nil {
			return false, err
		}
		c.local = fresh
		c.version = resp.Version
		c.synced++
		return true, nil
	case StatusError:
		return false, fmt.Errorf("trustwire: server error: %s", resp.Error)
	default:
		return false, fmt.Errorf("trustwire: unknown response status %q", resp.Status)
	}
}

// Poll runs Sync every interval until stop is closed, delivering any sync
// error to errs (non-blocking; errors are dropped if nobody listens).
func (c *Replica) Poll(interval time.Duration, stop <-chan struct{}, errs chan<- error) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			if _, err := c.Sync(); err != nil {
				select {
				case errs <- err:
				default:
				}
				return
			}
		}
	}
}

// Table returns the current local copy for reading.  The returned table
// must be treated as read-only; it is replaced wholesale on the next
// applied snapshot, so a scheduler can safely keep using the instance it
// grabbed for one mapping pass.
func (c *Replica) Table() ReadOnlyTable {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.local
}
