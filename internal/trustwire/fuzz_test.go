package trustwire

import (
	"bufio"
	"bytes"
	"testing"

	"gridtrust/internal/grid"
)

// FuzzReadFrame feeds arbitrary bytes to the frame reader: it must never
// panic and must reject non-JSON input with an error.
func FuzzReadFrame(f *testing.F) {
	f.Add([]byte("{\"op\":\"sync\",\"have_version\":3}\n"))
	f.Add([]byte("not json\n"))
	f.Add([]byte("\n"))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte("a"), 4096))
	f.Fuzz(func(t *testing.T, data []byte) {
		var req Request
		_ = readFrame(bufio.NewReader(bytes.NewReader(data)), &req)
	})
}

// FuzzApplyEntries feeds arbitrary entry lists to the replica-side
// installer: invalid entries must error before mutating, valid entries
// must install.
func FuzzApplyEntries(f *testing.F) {
	f.Add(0, 0, 0, "A")
	f.Add(3, 2, 1, "E")
	f.Add(-1, 0, 0, "B")
	f.Add(0, 0, 0, "F")
	f.Add(0, 0, 0, "zz")
	f.Fuzz(func(t *testing.T, cd, rd, act int, level string) {
		table := grid.NewTrustTable()
		err := applyEntries(table, []Entry{{CD: cd, RD: rd, Activity: act, Level: level}})
		if err != nil {
			if table.Len() != 0 {
				t.Fatalf("failed apply mutated the table")
			}
			return
		}
		if table.Len() != 1 {
			t.Fatalf("successful apply stored %d entries", table.Len())
		}
	})
}

// FuzzServerRespond drives the request dispatcher with arbitrary frames.
func FuzzServerRespond(f *testing.F) {
	f.Add("sync", uint64(0))
	f.Add("sync", uint64(99))
	f.Add("nuke", uint64(1))
	f.Fuzz(func(t *testing.T, op string, have uint64) {
		table := grid.NewTrustTable()
		_ = table.Set(0, 0, grid.ActCompute, grid.LevelC)
		srv, err := NewServer(table, 2, 2, 5)
		if err != nil {
			t.Fatal(err)
		}
		resp := srv.respond(Request{Op: op, HaveVersion: have})
		switch resp.Status {
		case StatusSnapshot, StatusCurrent, StatusError:
		default:
			t.Fatalf("unknown response status %q", resp.Status)
		}
	})
}
