package trustwire

import (
	"gridtrust/internal/grid"
)

// ReadOnlyTable is the view a remote scheduler gets of the replicated
// trust table: lookups and OTL computation, no mutation.
type ReadOnlyTable interface {
	Get(cd, rd grid.DomainID, act grid.Activity) (grid.TrustLevel, bool)
	OTL(cd, rd grid.DomainID, toa grid.ToA) (grid.TrustLevel, error)
	Len() int
}

// replicaTable adapts grid.TrustTable to the read-only interface; the
// replica replaces the whole instance on refresh, so readers never see a
// partially applied snapshot.
type replicaTable struct {
	table *grid.TrustTable
}

func newReplicaTable() *replicaTable {
	return &replicaTable{table: grid.NewTrustTable()}
}

// Get looks up one entry.
func (t *replicaTable) Get(cd, rd grid.DomainID, act grid.Activity) (grid.TrustLevel, bool) {
	return t.table.Get(cd, rd, act)
}

// OTL computes the offered trust level for a composed ToA.
func (t *replicaTable) OTL(cd, rd grid.DomainID, toa grid.ToA) (grid.TrustLevel, error) {
	return t.table.OTL(cd, rd, toa)
}

// Len returns the number of replicated entries.
func (t *replicaTable) Len() int { return t.table.Len() }

// copyTable clones src into dst and overlays the delta entries, the
// replica-side apply path for StatusDelta responses.
func copyTable(src *replicaTable, dst *replicaTable, delta []Entry) error {
	var copyErr error
	src.table.ForEach(func(cd, rd grid.DomainID, act grid.Activity, tl grid.TrustLevel) {
		if copyErr != nil {
			return
		}
		copyErr = dst.table.Set(cd, rd, act, tl)
	})
	if copyErr != nil {
		return copyErr
	}
	return applyEntries(dst.table, delta)
}
