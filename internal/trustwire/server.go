package trustwire

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"gridtrust/internal/grid"
)

// Server publishes a live TrustTable to replicas.  It serves any number
// of concurrent connections; each connection handles a stream of sync
// requests (a replica typically keeps one connection open and polls).
type Server struct {
	table *grid.TrustTable

	// Dimensions bound the snapshot walk: the trust table is keyed
	// sparsely, so the server needs to know the id space to flatten it.
	cds, rds, activities int

	ln     net.Listener
	wg     sync.WaitGroup
	closed atomic.Bool

	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	// history caches recent flattened snapshots keyed by version so
	// replicas within the window receive deltas instead of full tables.
	histMu      sync.Mutex
	history     map[uint64]map[[3]int]string
	histOrder   []uint64
	historySize int

	served       atomic.Int64 // snapshot responses sent, for tests/metrics
	deltasServed atomic.Int64
}

// track registers a live connection; untrack removes it.  Close force-
// closes whatever is registered so handlers blocked in reads return.
func (s *Server) track(c net.Conn) bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if s.closed.Load() {
		return false
	}
	if s.conns == nil {
		s.conns = make(map[net.Conn]struct{})
	}
	s.conns[c] = struct{}{}
	return true
}

func (s *Server) untrack(c net.Conn) {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	delete(s.conns, c)
}

// NewServer wraps a table for serving.  cds, rds and activities bound the
// identifier space that snapshots enumerate.
func NewServer(table *grid.TrustTable, cds, rds, activities int) (*Server, error) {
	if table == nil {
		return nil, fmt.Errorf("trustwire: nil table")
	}
	if cds <= 0 || rds <= 0 || activities <= 0 {
		return nil, fmt.Errorf("trustwire: non-positive dimensions %d/%d/%d", cds, rds, activities)
	}
	return &Server{
		table: table, cds: cds, rds: rds, activities: activities,
		history:     make(map[uint64]map[[3]int]string),
		historySize: 8,
	}, nil
}

// Serve accepts connections on ln until Close.  It returns the accept
// error that terminated the loop (net.ErrClosed after Close).
func (s *Server) Serve(ln net.Listener) error {
	// Publish the listener under the conn lock: Close may run from
	// another goroutine before the first Accept returns.
	s.connMu.Lock()
	s.ln = ln
	closed := s.closed.Load()
	s.connMu.Unlock()
	if closed {
		_ = ln.Close()
		return nil
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.closed.Load() {
				return nil
			}
			return err
		}
		if !s.track(conn) {
			_ = conn.Close()
			continue
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.untrack(conn)
			defer conn.Close()
			s.handle(conn)
		}()
	}
}

// ListenAndServe starts a TCP listener on addr (use "127.0.0.1:0" for an
// ephemeral port) and serves in a background goroutine, returning the
// bound address.
func (s *Server) ListenAndServe(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go func() { _ = s.Serve(ln) }()
	return ln.Addr(), nil
}

// Close stops accepting, force-closes live connections and waits for
// their handlers to exit.
func (s *Server) Close() {
	if s.closed.Swap(true) {
		return
	}
	s.connMu.Lock()
	if s.ln != nil {
		_ = s.ln.Close()
	}
	for c := range s.conns {
		_ = c.Close()
	}
	s.connMu.Unlock()
	s.wg.Wait()
}

// SnapshotsServed reports how many full-snapshot responses have been sent.
func (s *Server) SnapshotsServed() int64 { return s.served.Load() }

// DeltasServed reports how many delta responses have been sent.
func (s *Server) DeltasServed() int64 { return s.deltasServed.Load() }

// handle serves one connection: a loop of request → response frames.
func (s *Server) handle(conn net.Conn) {
	r := bufio.NewReaderSize(conn, 64<<10)
	for {
		var req Request
		if err := readFrame(r, &req); err != nil {
			if !errors.Is(err, io.EOF) && !s.closed.Load() {
				// Malformed frame: answer once, then drop the peer.
				_ = writeFrame(conn, Response{Status: StatusError, Error: err.Error()})
			}
			return
		}
		resp := s.respond(req)
		if err := writeFrame(conn, resp); err != nil {
			return
		}
	}
}

// respond computes the response to one sync request.
func (s *Server) respond(req Request) Response {
	if req.Op != OpSync {
		return Response{Status: StatusError, Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
	snap := s.table.Snapshot()
	if snap.Version() <= req.HaveVersion {
		return Response{Status: StatusCurrent, Version: snap.Version()}
	}
	entries := entriesFromTable(snap, s.cds, s.rds, s.activities)
	cur := flatten(entries)
	s.remember(snap.Version(), cur)

	// Delta path: if we still remember what the replica holds, send only
	// the differences (the table never deletes entries, so a delta is a
	// pure overlay).
	s.histMu.Lock()
	old, ok := s.history[req.HaveVersion]
	s.histMu.Unlock()
	if ok && req.HaveVersion > 0 {
		var delta []Entry
		for k, level := range cur {
			if old[k] != level {
				delta = append(delta, Entry{CD: k[0], RD: k[1], Activity: k[2], Level: level})
			}
		}
		s.deltasServed.Add(1)
		return Response{Status: StatusDelta, Version: snap.Version(), Entries: delta}
	}

	s.served.Add(1)
	return Response{
		Status:  StatusSnapshot,
		Version: snap.Version(),
		Entries: entries,
	}
}

// flatten keys entries for diffing.
func flatten(entries []Entry) map[[3]int]string {
	out := make(map[[3]int]string, len(entries))
	for _, e := range entries {
		out[[3]int{e.CD, e.RD, e.Activity}] = e.Level
	}
	return out
}

// remember caches a flattened snapshot, evicting the oldest beyond the
// history window.
func (s *Server) remember(version uint64, flat map[[3]int]string) {
	s.histMu.Lock()
	defer s.histMu.Unlock()
	if _, ok := s.history[version]; ok {
		return
	}
	s.history[version] = flat
	s.histOrder = append(s.histOrder, version)
	for len(s.histOrder) > s.historySize {
		delete(s.history, s.histOrder[0])
		s.histOrder = s.histOrder[1:]
	}
}
