// Package trustwire replicates the central trust-level table to read-only
// replicas at remote Grid domains, implementing the distribution story of
// Section 3.1: "we maintain a single table in a centrally organized RMS.
// The table may, however, be replicated at different domains for reading
// purposes."
//
// The protocol is a minimal request/response exchange over any
// stream-oriented transport (TCP in production, net.Pipe in tests):
// newline-delimited JSON frames.  Replicas poll with their last-seen
// version; the server answers "current" when the replica is up to date, a
// compact "delta" (only changed entries) when the replica's version is
// still inside the server's history window, and a full "snapshot"
// otherwise.  Deltas are pure overlays because the table never deletes
// entries; trust changes are rare ("trust is a slow varying attribute"),
// so deltas are typically a single entry.
package trustwire

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"gridtrust/internal/grid"
)

// MaxFrameBytes bounds a single JSON frame; a table of 4 CDs × 4 RDs × 5
// activities is ~80 entries, far below this.  The bound exists so a
// corrupt or malicious peer cannot make a replica allocate unboundedly.
const MaxFrameBytes = 1 << 20

// Request is a replica's poll: the highest table version it has applied.
type Request struct {
	// Op is "sync" (the only operation in v1; the field future-proofs
	// the wire format).
	Op string `json:"op"`
	// HaveVersion is the replica's current version, 0 for a cold start.
	HaveVersion uint64 `json:"have_version"`
}

// Entry is one trust-table cell on the wire.
type Entry struct {
	CD       int    `json:"cd"`
	RD       int    `json:"rd"`
	Activity int    `json:"activity"`
	Level    string `json:"level"` // "A".."E"
}

// Response is the server's answer to a sync request.
type Response struct {
	// Status is "snapshot" (full entries follow), "delta" (only entries
	// changed since the replica's version follow), "current" (replica
	// is up to date) or "error".
	Status string `json:"status"`
	// Version is the server's table version at snapshot time.
	Version uint64 `json:"version"`
	// Entries is the full table when Status is "snapshot".
	Entries []Entry `json:"entries,omitempty"`
	// Error carries a message when Status is "error".
	Error string `json:"error,omitempty"`
}

// Wire statuses.
const (
	StatusSnapshot = "snapshot"
	StatusDelta    = "delta"
	StatusCurrent  = "current"
	StatusError    = "error"
)

// OpSync is the only v1 operation.
const OpSync = "sync"

// writeFrame marshals v and writes it as one newline-terminated frame.
func writeFrame(w io.Writer, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("trustwire: marshal: %w", err)
	}
	if len(data) > MaxFrameBytes {
		return fmt.Errorf("trustwire: frame of %d bytes exceeds limit", len(data))
	}
	data = append(data, '\n')
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("trustwire: write: %w", err)
	}
	return nil
}

// readFrame reads one newline-terminated frame into v.
func readFrame(r *bufio.Reader, v any) error {
	line, err := r.ReadBytes('\n')
	if err != nil {
		return err // io.EOF propagates untouched for clean shutdown
	}
	if len(line) > MaxFrameBytes {
		return fmt.Errorf("trustwire: frame of %d bytes exceeds limit", len(line))
	}
	if err := json.Unmarshal(line, v); err != nil {
		return fmt.Errorf("trustwire: unmarshal: %w", err)
	}
	return nil
}

// entriesFromTable flattens a table snapshot for the wire.
func entriesFromTable(rep *grid.TableReplica, cds, rds, activities int) []Entry {
	var out []Entry
	for cd := 0; cd < cds; cd++ {
		for rd := 0; rd < rds; rd++ {
			for a := 0; a < activities; a++ {
				tl, ok := rep.Get(grid.DomainID(cd), grid.DomainID(rd), grid.Activity(a))
				if !ok {
					continue
				}
				out = append(out, Entry{CD: cd, RD: rd, Activity: a, Level: tl.String()})
			}
		}
	}
	return out
}

// applyEntries validates and installs wire entries into a table.
func applyEntries(t *grid.TrustTable, entries []Entry) error {
	for _, e := range entries {
		tl, err := grid.ParseLevel(e.Level)
		if err != nil {
			return fmt.Errorf("trustwire: entry (%d,%d,%d): %w", e.CD, e.RD, e.Activity, err)
		}
		if e.CD < 0 || e.RD < 0 || e.Activity < 0 {
			return fmt.Errorf("trustwire: negative identifier in entry (%d,%d,%d)", e.CD, e.RD, e.Activity)
		}
		if err := t.Set(grid.DomainID(e.CD), grid.DomainID(e.RD), grid.Activity(e.Activity), tl); err != nil {
			return fmt.Errorf("trustwire: entry (%d,%d,%d): %w", e.CD, e.RD, e.Activity, err)
		}
	}
	return nil
}
