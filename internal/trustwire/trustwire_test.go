package trustwire

import (
	"bufio"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"gridtrust/internal/grid"
)

// newServedTable spins up a server on an ephemeral TCP port around a
// fresh table and returns both plus the address.
func newServedTable(t *testing.T) (*grid.TrustTable, *Server, string) {
	t.Helper()
	table := grid.NewTrustTable()
	srv, err := NewServer(table, 4, 4, int(grid.NumBuiltinActivities))
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return table, srv, addr.String()
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(nil, 1, 1, 1); err == nil {
		t.Error("accepted nil table")
	}
	if _, err := NewServer(grid.NewTrustTable(), 0, 1, 1); err == nil {
		t.Error("accepted zero dimension")
	}
}

func TestColdSyncTransfersFullTable(t *testing.T) {
	table, srv, addr := newServedTable(t)
	if err := table.Set(1, 2, grid.ActCompute, grid.LevelD); err != nil {
		t.Fatal(err)
	}
	if err := table.Set(0, 0, grid.ActStorage, grid.LevelB); err != nil {
		t.Fatal(err)
	}

	rep, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()

	applied, err := rep.Sync()
	if err != nil {
		t.Fatal(err)
	}
	if !applied {
		t.Fatal("cold sync applied nothing")
	}
	local := rep.Table()
	if local.Len() != 2 {
		t.Fatalf("replica has %d entries, want 2", local.Len())
	}
	if tl, ok := local.Get(1, 2, grid.ActCompute); !ok || tl != grid.LevelD {
		t.Fatalf("replica entry (1,2,compute) = %v/%v", tl, ok)
	}
	if rep.Version() != table.Version() {
		t.Fatalf("replica version %d, table version %d", rep.Version(), table.Version())
	}
	if srv.SnapshotsServed() != 1 {
		t.Fatalf("server served %d snapshots, want 1", srv.SnapshotsServed())
	}
}

func TestSyncIsIdempotentWhenCurrent(t *testing.T) {
	table, srv, addr := newServedTable(t)
	if err := table.Set(0, 0, grid.ActCompute, grid.LevelC); err != nil {
		t.Fatal(err)
	}
	rep, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	if _, err := rep.Sync(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		applied, err := rep.Sync()
		if err != nil {
			t.Fatal(err)
		}
		if applied {
			t.Fatal("replica re-applied an unchanged table")
		}
	}
	if srv.SnapshotsServed() != 1 {
		t.Fatalf("server served %d snapshots for an unchanged table", srv.SnapshotsServed())
	}
	if rep.SnapshotsApplied() != 1 {
		t.Fatalf("replica applied %d snapshots", rep.SnapshotsApplied())
	}
}

func TestUpdatePropagates(t *testing.T) {
	table, _, addr := newServedTable(t)
	if err := table.Set(0, 1, grid.ActCompute, grid.LevelB); err != nil {
		t.Fatal(err)
	}
	rep, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	if _, err := rep.Sync(); err != nil {
		t.Fatal(err)
	}
	// An agent revises the trust level upstream.
	if err := table.Set(0, 1, grid.ActCompute, grid.LevelE); err != nil {
		t.Fatal(err)
	}
	applied, err := rep.Sync()
	if err != nil {
		t.Fatal(err)
	}
	if !applied {
		t.Fatal("update did not propagate")
	}
	if tl, _ := rep.Table().Get(0, 1, grid.ActCompute); tl != grid.LevelE {
		t.Fatalf("replica sees %v, want E", tl)
	}
}

func TestReplicaOTLMatchesSource(t *testing.T) {
	table, _, addr := newServedTable(t)
	toa := grid.MustToA(grid.ActCompute, grid.ActStorage, grid.ActPrint)
	_ = table.Set(2, 3, grid.ActCompute, grid.LevelD)
	_ = table.Set(2, 3, grid.ActStorage, grid.LevelB)
	_ = table.Set(2, 3, grid.ActPrint, grid.LevelE)
	rep, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	if _, err := rep.Sync(); err != nil {
		t.Fatal(err)
	}
	want, err := table.OTL(2, 3, toa)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rep.Table().OTL(2, 3, toa)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("replica OTL %v, source %v", got, want)
	}
}

func TestManyReplicasConcurrently(t *testing.T) {
	table, _, addr := newServedTable(t)
	for a := grid.Activity(0); a < grid.NumBuiltinActivities; a++ {
		if err := table.Set(0, 0, a, grid.LevelC); err != nil {
			t.Fatal(err)
		}
	}
	const replicas = 8
	var wg sync.WaitGroup
	for i := 0; i < replicas; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rep, err := Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer rep.Close()
			for k := 0; k < 10; k++ {
				if _, err := rep.Sync(); err != nil {
					t.Error(err)
					return
				}
			}
			if rep.Table().Len() != int(grid.NumBuiltinActivities) {
				t.Errorf("replica has %d entries", rep.Table().Len())
			}
		}()
	}
	wg.Wait()
}

func TestPollLoopPicksUpChanges(t *testing.T) {
	table, _, addr := newServedTable(t)
	_ = table.Set(0, 0, grid.ActCompute, grid.LevelA)
	rep, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	stop := make(chan struct{})
	errs := make(chan error, 1)
	go rep.Poll(2*time.Millisecond, stop, errs)

	deadline := time.After(2 * time.Second)
	for rep.Version() == 0 {
		select {
		case err := <-errs:
			t.Fatal(err)
		case <-deadline:
			t.Fatal("poll loop never synced")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	_ = table.Set(0, 0, grid.ActCompute, grid.LevelE)
	for {
		if tl, ok := rep.Table().Get(0, 0, grid.ActCompute); ok && tl == grid.LevelE {
			break
		}
		select {
		case err := <-errs:
			t.Fatal(err)
		case <-deadline:
			t.Fatal("poll loop never picked up the update")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(stop)
}

func TestServerRejectsUnknownOp(t *testing.T) {
	_, _, addr := newServedTable(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeFrame(conn, Request{Op: "explode"}); err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := readFrame(bufio.NewReader(conn), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusError || !strings.Contains(resp.Error, "explode") {
		t.Fatalf("response %+v", resp)
	}
}

func TestServerRejectsMalformedFrame(t *testing.T) {
	_, _, addr := newServedTable(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("this is not json\n")); err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := readFrame(bufio.NewReader(conn), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusError {
		t.Fatalf("malformed frame got %+v", resp)
	}
}

func TestApplyEntriesValidation(t *testing.T) {
	table := grid.NewTrustTable()
	if err := applyEntries(table, []Entry{{CD: 0, RD: 0, Activity: 0, Level: "Z"}}); err == nil {
		t.Error("accepted bad level")
	}
	if err := applyEntries(table, []Entry{{CD: -1, RD: 0, Activity: 0, Level: "A"}}); err == nil {
		t.Error("accepted negative CD")
	}
	if err := applyEntries(table, []Entry{{CD: 0, RD: 0, Activity: 0, Level: "F"}}); err == nil {
		t.Error("accepted non-offerable F entry")
	}
}

func TestReplicaSurvivesServerClose(t *testing.T) {
	table, srv, addr := newServedTable(t)
	_ = table.Set(0, 0, grid.ActCompute, grid.LevelC)
	rep, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	if _, err := rep.Sync(); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	// The local copy keeps serving reads even though the link is dead.
	if tl, ok := rep.Table().Get(0, 0, grid.ActCompute); !ok || tl != grid.LevelC {
		t.Fatal("replica lost its local copy after server shutdown")
	}
	if _, err := rep.Sync(); err == nil {
		t.Fatal("sync against a closed server should fail")
	}
}

func TestRoundTripOverPipe(t *testing.T) {
	// The protocol works over any net.Conn; net.Pipe keeps this test
	// free of real sockets.
	table := grid.NewTrustTable()
	_ = table.Set(3, 1, grid.ActDisplay, grid.LevelD)
	srv, err := NewServer(table, 4, 4, int(grid.NumBuiltinActivities))
	if err != nil {
		t.Fatal(err)
	}
	client, server := net.Pipe()
	go srv.handle(server)
	rep := NewReplica(client)
	defer rep.Close()
	applied, err := rep.Sync()
	if err != nil || !applied {
		t.Fatalf("pipe sync: %v/%v", applied, err)
	}
	if tl, _ := rep.Table().Get(3, 1, grid.ActDisplay); tl != grid.LevelD {
		t.Fatalf("pipe replica sees %v", tl)
	}
}

func TestDeltaSync(t *testing.T) {
	table, srv, addr := newServedTable(t)
	for a := grid.Activity(0); a < grid.NumBuiltinActivities; a++ {
		if err := table.Set(0, 0, a, grid.LevelC); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	// Cold sync: full snapshot.
	if _, err := rep.Sync(); err != nil {
		t.Fatal(err)
	}
	if srv.SnapshotsServed() != 1 || srv.DeltasServed() != 0 {
		t.Fatalf("after cold sync: %d snapshots, %d deltas",
			srv.SnapshotsServed(), srv.DeltasServed())
	}
	// One change; the follow-up sync must travel as a delta.
	if err := table.Set(0, 0, grid.ActCompute, grid.LevelE); err != nil {
		t.Fatal(err)
	}
	applied, err := rep.Sync()
	if err != nil {
		t.Fatal(err)
	}
	if !applied {
		t.Fatal("delta not applied")
	}
	if srv.DeltasServed() != 1 {
		t.Fatalf("deltas served = %d, want 1", srv.DeltasServed())
	}
	// The replica's table must hold both the changed and the unchanged
	// entries.
	if tl, _ := rep.Table().Get(0, 0, grid.ActCompute); tl != grid.LevelE {
		t.Fatalf("delta entry not applied: %v", tl)
	}
	if tl, _ := rep.Table().Get(0, 0, grid.ActStorage); tl != grid.LevelC {
		t.Fatalf("unchanged entry lost in delta apply: %v", tl)
	}
	if rep.Table().Len() != int(grid.NumBuiltinActivities) {
		t.Fatalf("replica entry count = %d", rep.Table().Len())
	}
}

func TestDeltaFallsBackToSnapshotBeyondHistory(t *testing.T) {
	table, srv, addr := newServedTable(t)
	if err := table.Set(0, 0, grid.ActCompute, grid.LevelA); err != nil {
		t.Fatal(err)
	}
	rep, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	if _, err := rep.Sync(); err != nil {
		t.Fatal(err)
	}
	// Another replica drives many intermediate versions so the first
	// replica's version ages out of the 8-entry history window.
	other, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	levels := []grid.TrustLevel{grid.LevelB, grid.LevelC, grid.LevelD, grid.LevelE}
	for i := 0; i < 12; i++ {
		if err := table.Set(0, 0, grid.ActCompute, levels[i%len(levels)]); err != nil {
			t.Fatal(err)
		}
		if _, err := other.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	before := srv.SnapshotsServed()
	if _, err := rep.Sync(); err != nil {
		t.Fatal(err)
	}
	if srv.SnapshotsServed() != before+1 {
		t.Fatalf("stale replica did not receive a full snapshot")
	}
	if tl, _ := rep.Table().Get(0, 0, grid.ActCompute); tl != levels[11%len(levels)] {
		t.Fatalf("stale replica not caught up: %v", tl)
	}
}
