package trustwire

import (
	"net"
	"testing"
	"time"

	"gridtrust/internal/chaos"
	"gridtrust/internal/grid"
	"gridtrust/internal/testutil"
)

// TestPollSurvivesSyncErrors is the regression test for the poll loop
// exiting permanently on the first sync error: replication is
// anti-entropy, so after the peer dies and comes back the loop must
// redial and converge without anyone restarting it.
func TestPollSurvivesSyncErrors(t *testing.T) {
	defer testutil.LeakCheck(t)()

	table := grid.NewTrustTable()
	if err := table.Set(0, 1, grid.ActCompute, grid.LevelC); err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(table, 4, 4, int(grid.NumBuiltinActivities))
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	rep, err := DialTimeout(addr.String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	if _, err := rep.Sync(); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	defer close(stop)
	errs := make(chan error, 1)
	pollDone := make(chan struct{})
	go func() {
		defer close(pollDone)
		rep.Poll(5*time.Millisecond, stop, errs)
	}()

	// Kill the server and wait for the poll loop to hit an error.
	srv.Close()
	select {
	case <-errs:
	case <-time.After(5 * time.Second):
		t.Fatal("poll loop never reported the dead peer")
	}

	// Revive the server on the same address with a revised table.
	if err := table.Set(0, 1, grid.ActCompute, grid.LevelA); err != nil {
		t.Fatal(err)
	}
	srv2, err := NewServer(table, 4, 4, int(grid.NumBuiltinActivities))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv2.ListenAndServe(addr.String()); err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()

	// The still-running loop must redial and converge.
	deadline := time.Now().Add(5 * time.Second)
	for rep.Version() != table.Version() {
		select {
		case <-pollDone:
			t.Fatal("poll loop exited on sync error")
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never reconverged: at v%d, table v%d", rep.Version(), table.Version())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if tl, ok := rep.Table().Get(0, 1, grid.ActCompute); !ok || tl != grid.LevelA {
		t.Fatalf("replica entry after reconvergence = %v/%v", tl, ok)
	}
}

// TestSyncDeadlineBoundsBlackholedPeer proves a partitioned peer costs
// one timeout-bounded round, not a wedged goroutine, and that the
// replica self-heals once the partition lifts.
func TestSyncDeadlineBoundsBlackholedPeer(t *testing.T) {
	defer testutil.LeakCheck(t)()

	table := grid.NewTrustTable()
	if err := table.Set(1, 2, grid.ActCompute, grid.LevelB); err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(table, 4, 4, int(grid.NumBuiltinActivities))
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	wire := chaos.NewWire(7)
	go srv.Serve(wire.Listener(ln))
	defer srv.Close()

	const timeout = 300 * time.Millisecond
	rep, err := DialTimeout(ln.Addr().String(), timeout)
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	if _, err := rep.Sync(); err != nil {
		t.Fatalf("clean sync: %v", err)
	}

	wire.Partition(true)
	start := time.Now()
	if _, err := rep.Sync(); err == nil {
		t.Fatal("sync through a black hole succeeded")
	}
	if elapsed := time.Since(start); elapsed > 4*timeout {
		t.Fatalf("black-holed sync took %v, deadline %v not honored", elapsed, timeout)
	}

	wire.Partition(false)
	// The broken conn was dropped; the next syncs redial and recover.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := rep.Sync(); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("replica never recovered after the partition healed")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if tl, ok := rep.Table().Get(1, 2, grid.ActCompute); !ok || tl != grid.LevelB {
		t.Fatalf("replica entry after heal = %v/%v", tl, ok)
	}
}
