package sched_test

import (
	"fmt"

	"gridtrust/internal/sched"
)

// ExampleMCT_trustAware shows the paper's central effect on a single
// decision: a fast machine with a poor trust relationship loses to a
// slower, trusted one once the expected security cost is visible.
func ExampleMCT_trustAware() {
	costs, err := sched.NewMatrixCosts(
		[][]float64{{100, 120}}, // machine 0 is faster...
		[][]int{{6, 0}},         // ...but carries the maximum trust cost
	)
	if err != nil {
		panic(err)
	}
	avail := []float64{0, 0}

	unaware, _ := sched.MCT{}.AssignOne(costs, sched.MustTrustUnaware(50), 0, avail)
	aware, _ := sched.MCT{}.AssignOne(costs, sched.MustTrustAware(15), 0, avail)

	fmt.Printf("trust-unaware picks machine %d (sees raw 100 vs 120)\n", unaware.Machine)
	fmt.Printf("trust-aware picks machine %d (sees 100·1.9=190 vs 120·1.0=120)\n", aware.Machine)
	// Output:
	// trust-unaware picks machine 0 (sees raw 100 vs 120)
	// trust-aware picks machine 1 (sees 100·1.9=190 vs 120·1.0=120)
}

// ExampleMinMin shows a batch mapping with the Min-min heuristic.
func ExampleMinMin() {
	costs, err := sched.NewMatrixCosts([][]float64{
		{2, 4},
		{3, 1},
		{5, 6},
	}, nil)
	if err != nil {
		panic(err)
	}
	schedule, err := sched.MinMin{}.AssignBatch(
		costs, sched.MustTrustAware(15), []int{0, 1, 2}, []float64{0, 0})
	if err != nil {
		panic(err)
	}
	for _, a := range schedule {
		fmt.Printf("task %d → machine %d (done at %.0f)\n", a.Req, a.Machine, a.DecisionCompletion)
	}
	// Output:
	// task 1 → machine 1 (done at 1)
	// task 0 → machine 0 (done at 2)
	// task 2 → machine 0 (done at 7)
}
