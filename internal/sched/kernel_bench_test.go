package sched

import (
	"fmt"
	"testing"

	"gridtrust/internal/rng"
)

// Kernel benchmark suite: the incremental kernels vs the naive reference
// implementations across T×M grids from 32×8 to 1024×128, under both the
// trust-aware and trust-unaware policies.  The optimized side maps through
// AssignBatchInto with a recycled destination slice, so allocs/op reports
// the steady-state allocation contract (0).
//
// Regenerate the perf trajectory with:
//
//	go test ./internal/sched -run '^$' -bench 'Kernel' -benchmem

// kernelGrids are the benchmarked batch shapes.
var kernelGrids = []struct{ tasks, machines int }{
	{32, 8},
	{128, 32},
	{512, 64},
	{1024, 128},
}

// benchPolicies pairs each policy with a short label for sub-benchmark
// names.
var benchPolicies = []struct {
	label  string
	policy Policy
}{
	{"aware", MustTrustAware(DefaultTCWeight)},
	{"unaware", MustTrustUnaware(DefaultFlatOverheadPct)},
}

// benchInstance draws a deterministic instance for a grid shape.
func benchInstance(tasks, machines int) (*MatrixCosts, []int, []float64) {
	src := rng.New(uint64(tasks)*1000003 + uint64(machines))
	exec := make([][]float64, tasks)
	tc := make([][]int, tasks)
	for i := range exec {
		exec[i] = make([]float64, machines)
		tc[i] = make([]int, machines)
		for m := range exec[i] {
			exec[i][m] = src.Uniform(1, 1000)
			tc[i][m] = src.IntRange(0, 6)
		}
	}
	c, err := NewMatrixCosts(exec, tc)
	if err != nil {
		panic(err)
	}
	reqs := make([]int, tasks)
	for i := range reqs {
		reqs[i] = i
	}
	return c, reqs, make([]float64, machines)
}

// benchKernelGrids runs fn across every grid and policy.
func benchKernelGrids(b *testing.B, fn func(b *testing.B, c Costs, p Policy, reqs []int, avail []float64)) {
	b.Helper()
	for _, g := range kernelGrids {
		c, reqs, avail := benchInstance(g.tasks, g.machines)
		for _, bp := range benchPolicies {
			b.Run(fmt.Sprintf("%dx%d/%s", g.tasks, g.machines, bp.label), func(b *testing.B) {
				fn(b, c, bp.policy, reqs, avail)
			})
		}
	}
}

func benchInto(b *testing.B, h BatchInto, c Costs, p Policy, reqs []int, avail []float64) {
	b.Helper()
	dst := make([]Assignment, 0, len(reqs))
	// Warm the kernel pool so pool misses don't count as steady state.
	if _, err := h.AssignBatchInto(c, p, reqs, avail, dst); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := h.AssignBatchInto(c, p, reqs, avail, dst)
		if err != nil {
			b.Fatal(err)
		}
		dst = out[:0]
	}
}

func BenchmarkKernelMinMin(b *testing.B) {
	benchKernelGrids(b, func(b *testing.B, c Costs, p Policy, reqs []int, avail []float64) {
		benchInto(b, MinMin{}, c, p, reqs, avail)
	})
}

func BenchmarkKernelMaxMin(b *testing.B) {
	benchKernelGrids(b, func(b *testing.B, c Costs, p Policy, reqs []int, avail []float64) {
		benchInto(b, MaxMin{}, c, p, reqs, avail)
	})
}

func BenchmarkKernelSufferage(b *testing.B) {
	benchKernelGrids(b, func(b *testing.B, c Costs, p Policy, reqs []int, avail []float64) {
		benchInto(b, Sufferage{}, c, p, reqs, avail)
	})
}

func BenchmarkKernelDuplex(b *testing.B) {
	benchKernelGrids(b, func(b *testing.B, c Costs, p Policy, reqs []int, avail []float64) {
		benchInto(b, Duplex{}, c, p, reqs, avail)
	})
}

func BenchmarkKernelReferenceMinMin(b *testing.B) {
	benchKernelGrids(b, func(b *testing.B, c Costs, p Policy, reqs []int, avail []float64) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := referenceMinMaxMin(c, p, reqs, avail, false); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkKernelReferenceMaxMin(b *testing.B) {
	benchKernelGrids(b, func(b *testing.B, c Costs, p Policy, reqs []int, avail []float64) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := referenceMinMaxMin(c, p, reqs, avail, true); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkKernelReferenceSufferage(b *testing.B) {
	benchKernelGrids(b, func(b *testing.B, c Costs, p Policy, reqs []int, avail []float64) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := referenceSufferage(c, p, reqs, avail); err != nil {
				b.Fatal(err)
			}
		}
	})
}
