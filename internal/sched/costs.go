package sched

import "fmt"

// Costs abstracts the scheduling instance: execution costs and trust costs
// for every (request, machine) pair.  internal/sim adapts a
// workload.Workload; tests use MatrixCosts fixtures.
type Costs interface {
	// NumRequests and NumMachines give the instance dimensions.
	NumRequests() int
	NumMachines() int
	// EEC returns the expected execution cost of request r on machine m.
	EEC(r, m int) float64
	// TrustCost returns the paper's TC in [0,6] for request r on
	// machine m.
	TrustCost(r, m int) (int, error)
}

// MatrixCosts is a concrete Costs backed by dense matrices.
type MatrixCosts struct {
	Exec [][]float64 // [request][machine]
	TC   [][]int     // [request][machine]; nil means all zero
}

// NewMatrixCosts validates and wraps the given matrices.  tc may be nil
// (all trust costs zero).
func NewMatrixCosts(exec [][]float64, tc [][]int) (*MatrixCosts, error) {
	if len(exec) == 0 || len(exec[0]) == 0 {
		return nil, fmt.Errorf("sched: empty cost matrix")
	}
	machines := len(exec[0])
	for i, row := range exec {
		if len(row) != machines {
			return nil, fmt.Errorf("sched: ragged EEC matrix at row %d", i)
		}
		for j, v := range row {
			if v < 0 {
				return nil, fmt.Errorf("sched: negative EEC at (%d,%d)", i, j)
			}
		}
	}
	if tc != nil {
		if len(tc) != len(exec) {
			return nil, fmt.Errorf("sched: TC matrix has %d rows, EEC has %d", len(tc), len(exec))
		}
		for i, row := range tc {
			if len(row) != machines {
				return nil, fmt.Errorf("sched: ragged TC matrix at row %d", i)
			}
			for j, v := range row {
				if v < 0 || v > 6 {
					return nil, fmt.Errorf("sched: TC %d at (%d,%d) outside [0,6]", v, i, j)
				}
			}
		}
	}
	return &MatrixCosts{Exec: exec, TC: tc}, nil
}

// NumRequests returns the number of requests in the instance.
func (c *MatrixCosts) NumRequests() int { return len(c.Exec) }

// NumMachines returns the number of machines in the instance.
func (c *MatrixCosts) NumMachines() int { return len(c.Exec[0]) }

// EEC returns the execution cost of request r on machine m.
func (c *MatrixCosts) EEC(r, m int) float64 { return c.Exec[r][m] }

// TrustCost returns the trust cost of request r on machine m.
func (c *MatrixCosts) TrustCost(r, m int) (int, error) {
	if c.TC == nil {
		return 0, nil
	}
	return c.TC[r][m], nil
}

// Assignment maps one request onto one machine.
type Assignment struct {
	Req     int
	Machine int
	// DecisionCompletion is the completion time (availability + decision
	// ECC) the heuristic believed when it committed the assignment.
	DecisionCompletion float64
}

// decisionECC computes the cost a heuristic minimises for (r,m) under the
// policy: EEC + DecisionESC.
func decisionECC(c Costs, p Policy, r, m int) (float64, error) {
	eec := c.EEC(r, m)
	tc, err := c.TrustCost(r, m)
	if err != nil {
		return 0, err
	}
	return eec + p.DecisionESC(eec, tc), nil
}

// ChargedECC computes the cost the system actually pays for (r,m) under
// the policy: EEC + ChargedESC.  The simulator uses this to advance
// machine availability regardless of what the mapper believed.
func ChargedECC(c Costs, p Policy, r, m int) (float64, error) {
	if err := validatePolicy(p); err != nil {
		return 0, err
	}
	eec := c.EEC(r, m)
	tc, err := c.TrustCost(r, m)
	if err != nil {
		return 0, err
	}
	return eec + p.ChargedESC(eec, tc), nil
}

// ChargedMakespan replays a schedule charging each assignment its charged
// ECC in sequence and returns the resulting makespan max_m(avail_m),
// mirroring the paper's Λ = max_m{α_m} with
// α_m = Σ_k [EEC + ESC]·X_km (Section 5.2).  The initial availability
// vector is not mutated.
func ChargedMakespan(c Costs, p Policy, as []Assignment, avail []float64) (float64, error) {
	if err := validateInstance(c, p, avail); err != nil {
		return 0, err
	}
	a := make([]float64, len(avail))
	copy(a, avail)
	for _, asg := range as {
		if asg.Machine < 0 || asg.Machine >= len(a) {
			return 0, fmt.Errorf("sched: assignment to unknown machine %d", asg.Machine)
		}
		ecc, err := ChargedECC(c, p, asg.Req, asg.Machine)
		if err != nil {
			return 0, err
		}
		a[asg.Machine] += ecc
	}
	ms := a[0]
	for _, v := range a[1:] {
		if v > ms {
			ms = v
		}
	}
	return ms, nil
}

// validateInstance checks common preconditions of heuristic entry points.
func validateInstance(c Costs, p Policy, avail []float64) error {
	if c == nil {
		return fmt.Errorf("sched: nil costs")
	}
	if err := validatePolicy(p); err != nil {
		return err
	}
	if c.NumMachines() <= 0 {
		return fmt.Errorf("sched: instance has no machines")
	}
	if len(avail) != c.NumMachines() {
		return fmt.Errorf("sched: availability vector has %d entries for %d machines",
			len(avail), c.NumMachines())
	}
	return nil
}
