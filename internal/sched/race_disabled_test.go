//go:build !race

package sched

// raceEnabled reports whether the race detector is active.
const raceEnabled = false
