//go:build race

package sched

// raceEnabled reports whether the race detector is active; sync.Pool
// deliberately drops items under the detector, so allocation-count
// assertions are meaningless there.
const raceEnabled = true
