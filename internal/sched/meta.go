package sched

import (
	"fmt"
	"math"

	"gridtrust/internal/rng"
)

// This file implements the classic metaheuristic mappers used as strong
// baselines in the heterogeneous-computing mapping literature the paper
// builds on (Braun et al.'s companion study to [10]): a genetic
// algorithm, simulated annealing, and their GSA hybrid.  All operate in
// batch mode on the same decision costs as the deterministic heuristics,
// all are seeded with the Min-min schedule and track the best solution
// found, so their decision makespan is never worse than Min-min's.

// assignmentVectorToSchedule converts a machines-per-request vector into
// ordered Assignments: requests are dispatched machine by machine in
// vector order, reproducing list-schedule semantics.
func assignmentVectorToSchedule(c Costs, p Policy, reqs []int, vec []int, avail []float64) ([]Assignment, error) {
	a := make([]float64, len(avail))
	copy(a, avail)
	out := make([]Assignment, len(reqs))
	for i, r := range reqs {
		m := vec[i]
		ecc, err := decisionECC(c, p, r, m)
		if err != nil {
			return nil, err
		}
		a[m] += ecc
		out[i] = Assignment{Req: r, Machine: m, DecisionCompletion: a[m]}
	}
	return out, nil
}

// vectorMakespan evaluates the decision makespan of a machines-per-request
// vector against a precomputed flat ECC table with row stride len(scratch).
func vectorMakespan(table []float64, vec []int, avail []float64, scratch []float64) float64 {
	copy(scratch, avail)
	nm := len(scratch)
	for i, m := range vec {
		scratch[m] += table[i*nm+m]
	}
	ms := scratch[0]
	for _, v := range scratch[1:] {
		if v > ms {
			ms = v
		}
	}
	return ms
}

// minMinVector runs Min-min and returns its machine vector in reqs order.
func minMinVector(c Costs, p Policy, reqs []int, avail []float64) ([]int, error) {
	as, err := (MinMin{}).AssignBatch(c, p, reqs, avail)
	if err != nil {
		return nil, err
	}
	pos := make(map[int]int, len(reqs))
	for i, r := range reqs {
		pos[r] = i
	}
	vec := make([]int, len(reqs))
	for _, a := range as {
		vec[pos[a.Req]] = a.Machine
	}
	return vec, nil
}

// GeneticAlgorithm is a batch mapper evolving machine-assignment vectors.
// The zero value is invalid; fill the fields or use NewGeneticAlgorithm.
type GeneticAlgorithm struct {
	// Seed makes runs reproducible; the same seed and instance yield
	// the same schedule.
	Seed uint64
	// Population, Generations, CrossoverRate and MutationRate control
	// the search.  NewGeneticAlgorithm picks literature defaults.
	Population    int
	Generations   int
	CrossoverRate float64
	MutationRate  float64
	// Patience stops early after this many generations without
	// improvement (0 = never stop early).
	Patience int
}

// NewGeneticAlgorithm returns a GA with the defaults used in the mapping
// literature: population 40, 100 generations, crossover 0.6, mutation 0.1,
// patience 25.
func NewGeneticAlgorithm(seed uint64) GeneticAlgorithm {
	return GeneticAlgorithm{
		Seed: seed, Population: 40, Generations: 100,
		CrossoverRate: 0.6, MutationRate: 0.1, Patience: 25,
	}
}

// Name returns "GA".
func (GeneticAlgorithm) Name() string { return "GA" }

// validate rejects unusable parameters.
func (g GeneticAlgorithm) validate() error {
	switch {
	case g.Population < 2:
		return fmt.Errorf("sched: GA population %d < 2", g.Population)
	case g.Generations < 1:
		return fmt.Errorf("sched: GA generations %d < 1", g.Generations)
	case g.CrossoverRate < 0 || g.CrossoverRate > 1:
		return fmt.Errorf("sched: GA crossover rate %g outside [0,1]", g.CrossoverRate)
	case g.MutationRate < 0 || g.MutationRate > 1:
		return fmt.Errorf("sched: GA mutation rate %g outside [0,1]", g.MutationRate)
	case g.Patience < 0:
		return fmt.Errorf("sched: GA patience %d negative", g.Patience)
	}
	return nil
}

// AssignBatch evolves a schedule for the meta-request.
func (g GeneticAlgorithm) AssignBatch(c Costs, p Policy, reqs []int, avail []float64) ([]Assignment, error) {
	if err := validateBatch(c, p, reqs, avail); err != nil {
		return nil, err
	}
	if err := g.validate(); err != nil {
		return nil, err
	}
	if len(reqs) == 0 {
		return nil, nil
	}
	nm := c.NumMachines()
	table, err := eccTable(c, p, reqs, nm)
	if err != nil {
		return nil, err
	}
	src := rng.New(g.Seed)
	scratch := make([]float64, nm)

	// Population: one Min-min chromosome, the rest random.
	pop := make([][]int, g.Population)
	fit := make([]float64, g.Population)
	seedVec, err := minMinVector(c, p, reqs, avail)
	if err != nil {
		return nil, err
	}
	pop[0] = seedVec
	for i := 1; i < g.Population; i++ {
		vec := make([]int, len(reqs))
		for k := range vec {
			vec[k] = src.Intn(nm)
		}
		pop[i] = vec
	}
	for i := range pop {
		fit[i] = vectorMakespan(table, pop[i], avail, scratch)
	}

	best := make([]int, len(reqs))
	copy(best, pop[0])
	bestFit := fit[0]
	for i := 1; i < g.Population; i++ {
		if fit[i] < bestFit {
			bestFit = fit[i]
			copy(best, pop[i])
		}
	}

	stale := 0
	for gen := 0; gen < g.Generations; gen++ {
		next := make([][]int, 0, g.Population)
		// Elitism: the best survives unchanged.
		elite := make([]int, len(best))
		copy(elite, best)
		next = append(next, elite)
		for len(next) < g.Population {
			a := g.tournament(src, pop, fit)
			b := g.tournament(src, pop, fit)
			child := make([]int, len(reqs))
			if src.Bool(g.CrossoverRate) && len(reqs) > 1 {
				cut := 1 + src.Intn(len(reqs)-1)
				copy(child[:cut], pop[a][:cut])
				copy(child[cut:], pop[b][cut:])
			} else {
				copy(child, pop[a])
			}
			if src.Bool(g.MutationRate) {
				child[src.Intn(len(reqs))] = src.Intn(nm)
			}
			next = append(next, child)
		}
		pop = next
		improved := false
		for i := range pop {
			fit[i] = vectorMakespan(table, pop[i], avail, scratch)
			if fit[i] < bestFit {
				bestFit = fit[i]
				copy(best, pop[i])
				improved = true
			}
		}
		if improved {
			stale = 0
		} else {
			stale++
			if g.Patience > 0 && stale >= g.Patience {
				break
			}
		}
	}
	return assignmentVectorToSchedule(c, p, reqs, best, avail)
}

// tournament picks the fitter of two random population members.
func (g GeneticAlgorithm) tournament(src *rng.Source, pop [][]int, fit []float64) int {
	a := src.Intn(len(pop))
	b := src.Intn(len(pop))
	if fit[a] <= fit[b] {
		return a
	}
	return b
}

// SimulatedAnnealing is a batch mapper that perturbs a Min-min seed
// schedule under a geometric cooling schedule, accepting uphill moves with
// the Boltzmann probability.
type SimulatedAnnealing struct {
	// Seed makes runs reproducible.
	Seed uint64
	// InitialTempFactor scales the starting temperature relative to the
	// seed makespan (default 0.1).
	InitialTempFactor float64
	// Cooling is the geometric cooling factor in (0,1) (default 0.95).
	Cooling float64
	// MovesPerTemp is the neighbourhood sample size per temperature
	// level (default 4x requests).
	MovesPerTemp int
	// MinTempFraction stops the anneal when the temperature falls below
	// this fraction of the initial temperature (default 1e-3).
	MinTempFraction float64
}

// NewSimulatedAnnealing returns an annealer with the defaults above.
func NewSimulatedAnnealing(seed uint64) SimulatedAnnealing {
	return SimulatedAnnealing{
		Seed: seed, InitialTempFactor: 0.1, Cooling: 0.95,
		MovesPerTemp: 0, MinTempFraction: 1e-3,
	}
}

// Name returns "SAnneal".
func (SimulatedAnnealing) Name() string { return "SAnneal" }

// validate rejects unusable parameters.
func (s SimulatedAnnealing) validate() error {
	switch {
	case s.InitialTempFactor <= 0:
		return fmt.Errorf("sched: SA initial temperature factor %g <= 0", s.InitialTempFactor)
	case s.Cooling <= 0 || s.Cooling >= 1:
		return fmt.Errorf("sched: SA cooling %g outside (0,1)", s.Cooling)
	case s.MovesPerTemp < 0:
		return fmt.Errorf("sched: SA moves per temperature %d negative", s.MovesPerTemp)
	case s.MinTempFraction <= 0 || s.MinTempFraction >= 1:
		return fmt.Errorf("sched: SA min temperature fraction %g outside (0,1)", s.MinTempFraction)
	}
	return nil
}

// AssignBatch anneals a schedule for the meta-request.
func (s SimulatedAnnealing) AssignBatch(c Costs, p Policy, reqs []int, avail []float64) ([]Assignment, error) {
	if err := validateBatch(c, p, reqs, avail); err != nil {
		return nil, err
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	if len(reqs) == 0 {
		return nil, nil
	}
	nm := c.NumMachines()
	table, err := eccTable(c, p, reqs, nm)
	if err != nil {
		return nil, err
	}
	src := rng.New(s.Seed)
	scratch := make([]float64, nm)

	cur, err := minMinVector(c, p, reqs, avail)
	if err != nil {
		return nil, err
	}
	curFit := vectorMakespan(table, cur, avail, scratch)
	best := make([]int, len(cur))
	copy(best, cur)
	bestFit := curFit

	movesPerTemp := s.MovesPerTemp
	if movesPerTemp == 0 {
		movesPerTemp = 4 * len(reqs)
	}
	temp := curFit * s.InitialTempFactor
	if temp <= 0 {
		temp = 1
	}
	minTemp := temp * s.MinTempFraction
	for temp > minTemp {
		for move := 0; move < movesPerTemp; move++ {
			i := src.Intn(len(reqs))
			old := cur[i]
			next := src.Intn(nm)
			if next == old && nm > 1 {
				next = (next + 1 + src.Intn(nm-1)) % nm
			}
			cur[i] = next
			fit := vectorMakespan(table, cur, avail, scratch)
			delta := fit - curFit
			if delta <= 0 || src.Float64() < math.Exp(-delta/temp) {
				curFit = fit
				if fit < bestFit {
					bestFit = fit
					copy(best, cur)
				}
			} else {
				cur[i] = old // reject
			}
		}
		temp *= s.Cooling
	}
	return assignmentVectorToSchedule(c, p, reqs, best, avail)
}

var (
	_ Batch = GeneticAlgorithm{}
	_ Batch = SimulatedAnnealing{}
)

// GeneticSimulatedAnnealing is the GSA hybrid from the mapping-heuristics
// literature: a genetic algorithm whose survivor selection uses the
// simulated-annealing acceptance test instead of pure elitism — a child
// worse than its parent survives with the Boltzmann probability, and the
// temperature cools every generation.
type GeneticSimulatedAnnealing struct {
	GA GeneticAlgorithm
	// InitialTempFactor scales the starting temperature relative to the
	// Min-min seed makespan; Cooling is applied once per generation.
	InitialTempFactor float64
	Cooling           float64
}

// NewGSA returns a GSA with literature defaults layered on the GA
// defaults.
func NewGSA(seed uint64) GeneticSimulatedAnnealing {
	return GeneticSimulatedAnnealing{
		GA:                NewGeneticAlgorithm(seed),
		InitialTempFactor: 0.1,
		Cooling:           0.9,
	}
}

// Name returns "GSA".
func (GeneticSimulatedAnnealing) Name() string { return "GSA" }

// AssignBatch evolves a schedule with annealed survivor selection.
func (g GeneticSimulatedAnnealing) AssignBatch(c Costs, p Policy, reqs []int, avail []float64) ([]Assignment, error) {
	if err := validateBatch(c, p, reqs, avail); err != nil {
		return nil, err
	}
	if err := g.GA.validate(); err != nil {
		return nil, err
	}
	if g.InitialTempFactor <= 0 || g.Cooling <= 0 || g.Cooling >= 1 {
		return nil, fmt.Errorf("sched: GSA temperature parameters (%g,%g) invalid",
			g.InitialTempFactor, g.Cooling)
	}
	if len(reqs) == 0 {
		return nil, nil
	}
	nm := c.NumMachines()
	table, err := eccTable(c, p, reqs, nm)
	if err != nil {
		return nil, err
	}
	src := rng.New(g.GA.Seed)
	scratch := make([]float64, nm)

	pop := make([][]int, g.GA.Population)
	fit := make([]float64, g.GA.Population)
	seedVec, err := minMinVector(c, p, reqs, avail)
	if err != nil {
		return nil, err
	}
	pop[0] = seedVec
	for i := 1; i < g.GA.Population; i++ {
		vec := make([]int, len(reqs))
		for k := range vec {
			vec[k] = src.Intn(nm)
		}
		pop[i] = vec
	}
	for i := range pop {
		fit[i] = vectorMakespan(table, pop[i], avail, scratch)
	}
	best := make([]int, len(reqs))
	copy(best, pop[0])
	bestFit := fit[0]
	for i := 1; i < g.GA.Population; i++ {
		if fit[i] < bestFit {
			bestFit = fit[i]
			copy(best, pop[i])
		}
	}

	temp := bestFit * g.InitialTempFactor
	if temp <= 0 {
		temp = 1
	}
	for gen := 0; gen < g.GA.Generations; gen++ {
		for i := range pop {
			// Breed a child from this member and a tournament mate.
			mate := g.GA.tournament(src, pop, fit)
			child := make([]int, len(reqs))
			if src.Bool(g.GA.CrossoverRate) && len(reqs) > 1 {
				cut := 1 + src.Intn(len(reqs)-1)
				copy(child[:cut], pop[i][:cut])
				copy(child[cut:], pop[mate][cut:])
			} else {
				copy(child, pop[i])
			}
			if src.Bool(g.GA.MutationRate) {
				child[src.Intn(len(reqs))] = src.Intn(nm)
			}
			childFit := vectorMakespan(table, child, avail, scratch)
			delta := childFit - fit[i]
			if delta <= 0 || src.Float64() < math.Exp(-delta/temp) {
				pop[i], fit[i] = child, childFit
				if childFit < bestFit {
					bestFit = childFit
					copy(best, child)
				}
			}
		}
		temp *= g.Cooling
	}
	return assignmentVectorToSchedule(c, p, reqs, best, avail)
}

var _ Batch = GeneticSimulatedAnnealing{}
