package sched

import (
	"fmt"
	"math"
)

// This file preserves the naive O(T²·M) batch-mapping implementations the
// incremental kernels in kernel.go replaced.  They are the executable
// specification of the heuristics: kernel_equiv_test.go and
// FuzzKernelEquivalence assert the kernels emit assignment-for-assignment
// identical schedules, and kernel_bench_test.go benchmarks them as the
// "old" side of the perf trajectory.

// referenceMinMaxMin implements both Min-min (pickMax=false) and Max-min
// (pickMax=true) by full rescan of every remaining (task, machine) pair.
func referenceMinMaxMin(c Costs, p Policy, reqs []int, avail []float64, pickMax bool) ([]Assignment, error) {
	if err := validateBatch(c, p, reqs, avail); err != nil {
		return nil, err
	}
	nm := c.NumMachines()
	table, err := eccTable(c, p, reqs, nm)
	if err != nil {
		return nil, err
	}
	a := make([]float64, nm)
	copy(a, avail)
	remaining := make([]int, len(reqs)) // indices into reqs
	for i := range remaining {
		remaining[i] = i
	}
	out := make([]Assignment, 0, len(reqs))
	for len(remaining) > 0 {
		chosenPos := -1 // position within remaining
		chosenMachine := -1
		chosenDone := math.Inf(1)
		if pickMax {
			chosenDone = math.Inf(-1)
		}
		for pos, i := range remaining {
			// Best machine for request i.
			bm := -1
			bd := math.Inf(1)
			row := table[i*nm : (i+1)*nm]
			for m := 0; m < nm; m++ {
				if done := a[m] + row[m]; done < bd {
					bd = done
					bm = m
				}
			}
			better := bd < chosenDone
			if pickMax {
				better = bd > chosenDone
			}
			if better {
				chosenDone = bd
				chosenMachine = bm
				chosenPos = pos
			}
		}
		i := remaining[chosenPos]
		out = append(out, Assignment{
			Req:                reqs[i],
			Machine:            chosenMachine,
			DecisionCompletion: chosenDone,
		})
		a[chosenMachine] = chosenDone
		remaining = append(remaining[:chosenPos], remaining[chosenPos+1:]...)
	}
	return out, nil
}

// referenceSufferage implements the Sufferage heuristic by recomputing
// every remaining task's (best, second-best) pair on every sweep.
func referenceSufferage(c Costs, p Policy, reqs []int, avail []float64) ([]Assignment, error) {
	if err := validateBatch(c, p, reqs, avail); err != nil {
		return nil, err
	}
	nm := c.NumMachines()
	table, err := eccTable(c, p, reqs, nm)
	if err != nil {
		return nil, err
	}
	a := make([]float64, nm)
	copy(a, avail)
	assigned := make([]bool, len(reqs))
	out := make([]Assignment, 0, len(reqs))
	left := len(reqs)
	for left > 0 {
		// holder[m] is the request position tentatively holding machine
		// m this iteration, -1 if free.
		holder := make([]int, nm)
		sufferOf := make([]float64, nm)
		doneOf := make([]float64, nm)
		for m := range holder {
			holder[m] = -1
		}
		claimed := 0
		for i := range reqs {
			if assigned[i] {
				continue
			}
			// Best and second-best completion for request i.
			bm, bd, sd := -1, math.Inf(1), math.Inf(1)
			row := table[i*nm : (i+1)*nm]
			for m := 0; m < nm; m++ {
				done := a[m] + row[m]
				switch {
				case done < bd:
					sd = bd
					bd = done
					bm = m
				case done < sd:
					sd = done
				}
			}
			suffer := sd - bd
			if math.IsInf(sd, 1) {
				// Single-machine instance: sufferage is undefined;
				// treat as zero so first-come wins.
				suffer = 0
			}
			if holder[bm] == -1 {
				holder[bm] = i
				sufferOf[bm] = suffer
				doneOf[bm] = bd
				claimed++
			} else if suffer > sufferOf[bm] {
				// Evict the smaller sufferer; it waits for the next
				// iteration.
				holder[bm] = i
				sufferOf[bm] = suffer
				doneOf[bm] = bd
			}
		}
		if claimed == 0 {
			return nil, fmt.Errorf("sched: Sufferage made no progress with %d tasks left", left)
		}
		for m := 0; m < nm; m++ {
			i := holder[m]
			if i == -1 {
				continue
			}
			assigned[i] = true
			left--
			out = append(out, Assignment{
				Req:                reqs[i],
				Machine:            m,
				DecisionCompletion: doneOf[m],
			})
			a[m] = doneOf[m]
		}
	}
	return out, nil
}
