package sched

import (
	"testing"
	"testing/quick"

	"gridtrust/internal/rng"
)

// allImmediate enumerates every immediate-mode heuristic (fresh SA each
// call because it carries switching state).
func allImmediate() []Immediate {
	sa, _ := NewSA(0.6, 0.9)
	return []Immediate{MCT{}, MET{}, OLB{}, KPB{Percent: 50}, sa}
}

// allBatch enumerates every batch-mode heuristic.
func allBatch() []Batch {
	return []Batch{
		MinMin{}, MaxMin{}, Sufferage{}, Duplex{},
		NewGeneticAlgorithm(3), NewSimulatedAnnealing(3),
	}
}

// TestFuzzImmediateInvariants drives random instances through every
// immediate heuristic under every policy and checks the universal
// invariants: a valid machine, a finite decision completion no earlier
// than the machine's availability, and no mutation of the availability
// vector.
func TestFuzzImmediateInvariants(t *testing.T) {
	src := rng.New(20260706)
	policies := []Policy{
		MustTrustAware(DefaultTCWeight),
		MustTrustUnaware(DefaultFlatOverheadPct),
		MustTrustBlind(DefaultTCWeight),
	}
	f := func(tasksRaw, machinesRaw, availSeed uint8) bool {
		tasks := int(tasksRaw%8) + 1
		machines := int(machinesRaw%6) + 1
		c := randomInstance(src, tasks, machines)
		avail := make([]float64, machines)
		for m := range avail {
			avail[m] = float64(availSeed) * src.Float64() * 10
		}
		snapshot := make([]float64, machines)
		copy(snapshot, avail)
		for _, h := range allImmediate() {
			for _, p := range policies {
				for r := 0; r < tasks; r++ {
					a, err := h.AssignOne(c, p, r, avail)
					if err != nil {
						return false
					}
					if a.Machine < 0 || a.Machine >= machines {
						return false
					}
					if a.DecisionCompletion < avail[a.Machine]-1e-9 {
						return false
					}
				}
				for m := range avail {
					if avail[m] != snapshot[m] {
						return false // heuristic mutated its input
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestFuzzBatchInvariants drives random instances through every batch
// heuristic: every request assigned exactly once to a valid machine, the
// availability vector untouched, decision completions consistent with a
// replay of the schedule.
func TestFuzzBatchInvariants(t *testing.T) {
	src := rng.New(999)
	p := MustTrustAware(DefaultTCWeight)
	f := func(tasksRaw, machinesRaw uint8) bool {
		tasks := int(tasksRaw%12) + 1
		machines := int(machinesRaw%5) + 1
		c := randomInstance(src, tasks, machines)
		reqs := reqRange(tasks)
		avail := make([]float64, machines)
		for m := range avail {
			avail[m] = src.Float64() * 50
		}
		snapshot := make([]float64, machines)
		copy(snapshot, avail)
		for _, h := range allBatch() {
			as, err := h.AssignBatch(c, p, reqs, avail)
			if err != nil {
				return false
			}
			if len(as) != tasks {
				return false
			}
			seen := make(map[int]bool, tasks)
			for _, a := range as {
				if seen[a.Req] || a.Machine < 0 || a.Machine >= machines {
					return false
				}
				seen[a.Req] = true
			}
			for m := range avail {
				if avail[m] != snapshot[m] {
					return false
				}
			}
			// The charged makespan of any schedule is at least the
			// initial availability maximum.
			ms, err := ChargedMakespan(c, p, as, avail)
			if err != nil {
				return false
			}
			maxA := 0.0
			for _, v := range avail {
				if v > maxA {
					maxA = v
				}
			}
			if ms < maxA-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// FuzzKernelEquivalence cross-checks the incremental batch kernels
// against the reference implementations on fuzzed cost matrices.  The
// decoder maps raw bytes onto small NaN/Inf-free integer-ish costs so
// duplicate completion times (the hard tie cases) are common, and the
// shape bytes reach the single-machine and single-task corners.
func FuzzKernelEquivalence(f *testing.F) {
	// Seed corpus: generic, single-machine, all-ties, and single-task.
	f.Add([]byte{7, 3, 9, 2, 8, 4, 5, 5, 5, 1, 9, 2}, uint8(3), uint8(2))
	f.Add([]byte{3, 5, 1, 5}, uint8(3), uint8(0))       // 4 tasks, 1 machine
	f.Add([]byte{2, 2, 2, 2, 2, 2}, uint8(2), uint8(1)) // constant matrix
	f.Add([]byte{42}, uint8(0), uint8(4))               // 1 task
	f.Fuzz(func(t *testing.T, data []byte, tasksRaw, machinesRaw uint8) {
		tasks := int(tasksRaw%24) + 1
		machines := int(machinesRaw%8) + 1
		if len(data) == 0 {
			data = []byte{1}
		}
		at := func(k int) byte { return data[k%len(data)] }
		exec := make([][]float64, tasks)
		tc := make([][]int, tasks)
		k := 0
		for i := 0; i < tasks; i++ {
			exec[i] = make([]float64, machines)
			tc[i] = make([]int, machines)
			for m := 0; m < machines; m++ {
				// Costs in [1,17) with a fractional part from a small set:
				// finite, positive, tie-prone.
				exec[i][m] = float64(at(k)%16) + 1 + float64(at(k+1)%4)*0.25
				tc[i][m] = int(at(k+2) % 7)
				k += 3
			}
		}
		c, err := NewMatrixCosts(exec, tc)
		if err != nil {
			t.Fatal(err)
		}
		avail := make([]float64, machines)
		for m := range avail {
			avail[m] = float64(at(k) % 8)
			k++
		}
		reqs := reqRange(tasks)
		for _, p := range []Policy{
			MustTrustAware(DefaultTCWeight),
			MustTrustUnaware(DefaultFlatOverheadPct),
		} {
			refMin, err := referenceMinMaxMin(c, p, reqs, avail, false)
			if err != nil {
				t.Fatal(err)
			}
			optMin, err := (MinMin{}).AssignBatch(c, p, reqs, avail)
			if err != nil {
				t.Fatal(err)
			}
			diffSchedules(t, "Min-min", optMin, refMin)

			refMax, err := referenceMinMaxMin(c, p, reqs, avail, true)
			if err != nil {
				t.Fatal(err)
			}
			optMax, err := (MaxMin{}).AssignBatch(c, p, reqs, avail)
			if err != nil {
				t.Fatal(err)
			}
			diffSchedules(t, "Max-min", optMax, refMax)

			refSuf, err := referenceSufferage(c, p, reqs, avail)
			if err != nil {
				t.Fatal(err)
			}
			optSuf, err := (Sufferage{}).AssignBatch(c, p, reqs, avail)
			if err != nil {
				t.Fatal(err)
			}
			diffSchedules(t, "Sufferage", optSuf, refSuf)
		}
	})
}

// diffSchedules fails the fuzz run on the first divergent assignment.
func diffSchedules(t *testing.T, label string, got, want []Assignment) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: optimized emitted %d assignments, reference %d", label, len(got), len(want))
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("%s: assignment %d differs: optimized %+v, reference %+v", label, k, got[k], want[k])
		}
	}
}

// TestFuzzDecisionCompletionReplay verifies that batch heuristics'
// reported DecisionCompletion values match an independent replay of their
// schedule under decision costs.
func TestFuzzDecisionCompletionReplay(t *testing.T) {
	src := rng.New(31415)
	p := MustTrustAware(DefaultTCWeight)
	for trial := 0; trial < 25; trial++ {
		tasks := 1 + src.Intn(15)
		machines := 1 + src.Intn(5)
		c := randomInstance(src, tasks, machines)
		reqs := reqRange(tasks)
		avail := make([]float64, machines)
		for _, h := range []Batch{MinMin{}, MaxMin{}, Sufferage{}} {
			as, err := h.AssignBatch(c, p, reqs, avail)
			if err != nil {
				t.Fatal(err)
			}
			replay := make([]float64, machines)
			for _, a := range as {
				ecc, err := decisionECC(c, p, a.Req, a.Machine)
				if err != nil {
					t.Fatal(err)
				}
				replay[a.Machine] += ecc
				if diff := replay[a.Machine] - a.DecisionCompletion; diff > 1e-9 || diff < -1e-9 {
					t.Fatalf("%s trial %d: request %d decision completion %g, replay %g",
						h.Name(), trial, a.Req, a.DecisionCompletion, replay[a.Machine])
				}
			}
		}
	}
}
