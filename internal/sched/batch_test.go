package sched

import (
	"testing"
)

func reqRange(n int) []int {
	r := make([]int, n)
	for i := range r {
		r[i] = i
	}
	return r
}

func TestMinMinHandComputed(t *testing.T) {
	// exec = [[2,4],[3,1],[5,6]], avail=[0,0].
	// Round 1 bests: t0->m0@2, t1->m1@1, t2->m0@5; global min t1@m1.
	// Round 2 (a=[0,1]): t0->m0@2, t2->m0@5; min t0@m0.
	// Round 3 (a=[2,1]): t2: m0@7, m1@7 -> tie, first strict win m0.
	c := zeroTC(t, [][]float64{{2, 4}, {3, 1}, {5, 6}})
	as, err := MinMin{}.AssignBatch(c, aware, reqRange(3), []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	want := []Assignment{
		{Req: 1, Machine: 1, DecisionCompletion: 1},
		{Req: 0, Machine: 0, DecisionCompletion: 2},
		{Req: 2, Machine: 0, DecisionCompletion: 7},
	}
	if len(as) != len(want) {
		t.Fatalf("assignments = %v", as)
	}
	for i := range want {
		if as[i] != want[i] {
			t.Fatalf("assignment %d = %+v, want %+v", i, as[i], want[i])
		}
	}
}

func TestMaxMinHandComputed(t *testing.T) {
	// Same instance; Max-min places the long task first.
	// Round 1 bests: t0@2, t1@1, t2@5 -> max is t2@m0.
	// Round 2 (a=[5,0]): t0: m0@7, m1@4 -> 4@m1; t1: m0@8, m1@1 -> 1@m1;
	// max is t0@m1(4).
	// Round 3 (a=[5,4]): t1: m0@8, m1@5 -> m1@5.
	c := zeroTC(t, [][]float64{{2, 4}, {3, 1}, {5, 6}})
	as, err := MaxMin{}.AssignBatch(c, aware, reqRange(3), []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	want := []Assignment{
		{Req: 2, Machine: 0, DecisionCompletion: 5},
		{Req: 0, Machine: 1, DecisionCompletion: 4},
		{Req: 1, Machine: 1, DecisionCompletion: 5},
	}
	for i := range want {
		if as[i] != want[i] {
			t.Fatalf("assignment %d = %+v, want %+v", i, as[i], want[i])
		}
	}
}

func TestSufferageHandComputed(t *testing.T) {
	// exec = [[4,1],[3,2],[6,7]], avail=[0,0].
	// Iter 1: t0 best m1@1 suffer 3 claims m1; t1 best m1@2 suffer 1
	// loses to t0; t2 best m0@6 suffer 1 claims m0.
	// Commit t0->m1@1, t2->m0@6 (machine order), a=[6,1].
	// Iter 2: t1 best m1@3.
	c := zeroTC(t, [][]float64{{4, 1}, {3, 2}, {6, 7}})
	as, err := Sufferage{}.AssignBatch(c, aware, reqRange(3), []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	want := []Assignment{
		{Req: 2, Machine: 0, DecisionCompletion: 6},
		{Req: 0, Machine: 1, DecisionCompletion: 1},
		{Req: 1, Machine: 1, DecisionCompletion: 3},
	}
	if len(as) != len(want) {
		t.Fatalf("assignments = %v", as)
	}
	for i := range want {
		if as[i] != want[i] {
			t.Fatalf("assignment %d = %+v, want %+v", i, as[i], want[i])
		}
	}
}

func TestSufferageEvictionPrefersLargerSufferage(t *testing.T) {
	// Both tasks prefer m0; t1's sufferage is larger, so it wins the
	// machine and t0 waits a full iteration.
	// t0: m0@1, m1@2 -> suffer 1.  t1: m0@1, m1@10 -> suffer 9.
	c := zeroTC(t, [][]float64{{1, 2}, {1, 10}})
	as, err := Sufferage{}.AssignBatch(c, aware, reqRange(2), []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if as[0].Req != 1 || as[0].Machine != 0 {
		t.Fatalf("first commit = %+v, want request 1 on machine 0", as[0])
	}
	// Iteration 2: t0 sees m0@2, m1@2 — tie keeps m0 (first minimum).
	if as[1].Req != 0 {
		t.Fatalf("second commit = %+v, want request 0", as[1])
	}
}

func TestSufferageSingleMachine(t *testing.T) {
	c := zeroTC(t, [][]float64{{3}, {5}, {1}})
	as, err := Sufferage{}.AssignBatch(c, aware, reqRange(3), []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 3 {
		t.Fatalf("assigned %d of 3 tasks", len(as))
	}
	// All on machine 0; with suffer=0 ties, first-come wins each
	// iteration: t0, then t1, then t2.
	total := 0.0
	for _, a := range as {
		if a.Machine != 0 {
			t.Fatalf("assignment %+v on non-existent machine", a)
		}
		total += c.EEC(a.Req, 0)
	}
	if as[len(as)-1].DecisionCompletion != total {
		t.Fatalf("final completion %g, want %g", as[len(as)-1].DecisionCompletion, total)
	}
}

func TestBatchAssignsEveryRequestOnce(t *testing.T) {
	exec := [][]float64{
		{7, 3, 9}, {2, 8, 4}, {5, 5, 5}, {1, 9, 2}, {6, 2, 8},
		{3, 3, 1}, {9, 1, 7}, {4, 6, 2},
	}
	c := zeroTC(t, exec)
	for _, h := range []Batch{MinMin{}, MaxMin{}, Sufferage{}, Duplex{}} {
		as, err := h.AssignBatch(c, aware, reqRange(8), []float64{0, 0, 0})
		if err != nil {
			t.Fatalf("%s: %v", h.Name(), err)
		}
		seen := make(map[int]bool)
		for _, a := range as {
			if seen[a.Req] {
				t.Fatalf("%s assigned request %d twice", h.Name(), a.Req)
			}
			seen[a.Req] = true
			if a.Machine < 0 || a.Machine >= 3 {
				t.Fatalf("%s used machine %d", h.Name(), a.Machine)
			}
		}
		if len(seen) != 8 {
			t.Fatalf("%s assigned %d of 8 requests", h.Name(), len(seen))
		}
	}
}

func TestBatchSubsetOfRequests(t *testing.T) {
	// Heuristics must honour an explicit meta-request subset.
	c := zeroTC(t, [][]float64{{1, 2}, {3, 4}, {5, 6}, {7, 8}})
	as, err := MinMin{}.AssignBatch(c, aware, []int{1, 3}, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 2 {
		t.Fatalf("assigned %d, want 2", len(as))
	}
	for _, a := range as {
		if a.Req != 1 && a.Req != 3 {
			t.Fatalf("assigned request %d outside the meta-request", a.Req)
		}
	}
}

func TestDuplexPicksBetterSchedule(t *testing.T) {
	// Construct an instance where Max-min beats Min-min: one long task
	// and several short ones on two machines.  Min-min packs the short
	// tasks first and strands the long one; Max-min places it first.
	exec := [][]float64{
		{10, 10}, {1, 1}, {1, 1}, {1, 1}, {1, 1},
	}
	c := zeroTC(t, exec)
	avail := []float64{0, 0}
	minAs, err := MinMin{}.AssignBatch(c, aware, reqRange(5), avail)
	if err != nil {
		t.Fatal(err)
	}
	maxAs, err := MaxMin{}.AssignBatch(c, aware, reqRange(5), avail)
	if err != nil {
		t.Fatal(err)
	}
	dupAs, err := Duplex{}.AssignBatch(c, aware, reqRange(5), avail)
	if err != nil {
		t.Fatal(err)
	}
	minMS := decisionMakespan(minAs, avail)
	maxMS := decisionMakespan(maxAs, avail)
	dupMS := decisionMakespan(dupAs, avail)
	if maxMS >= minMS {
		t.Skipf("instance did not separate Max-min (%g) from Min-min (%g)", maxMS, minMS)
	}
	if dupMS != maxMS {
		t.Fatalf("Duplex makespan %g, want the better %g", dupMS, maxMS)
	}
}

func TestBatchValidation(t *testing.T) {
	c := zeroTC(t, [][]float64{{1, 2}})
	if _, err := (MinMin{}).AssignBatch(c, aware, []int{5}, []float64{0, 0}); err == nil {
		t.Error("accepted out-of-range request index")
	}
	if _, err := (MinMin{}).AssignBatch(c, aware, []int{0}, []float64{0}); err == nil {
		t.Error("accepted short availability vector")
	}
	if _, err := (Sufferage{}).AssignBatch(nil, aware, []int{0}, []float64{0, 0}); err == nil {
		t.Error("accepted nil costs")
	}
	// Empty meta-request is legal and yields an empty schedule.
	as, err := (MinMin{}).AssignBatch(c, aware, nil, []float64{0, 0})
	if err != nil || len(as) != 0 {
		t.Errorf("empty batch: %v, %v", as, err)
	}
}

func TestBatchByName(t *testing.T) {
	for _, name := range []string{"minmin", "maxmin", "sufferage", "duplex"} {
		h, err := BatchByName(name)
		if err != nil || h == nil {
			t.Errorf("BatchByName(%q): %v", name, err)
		}
	}
	if _, err := BatchByName("bogus"); err == nil {
		t.Error("unknown batch heuristic accepted")
	}
}

func TestBatchRespectsInitialAvailability(t *testing.T) {
	c := zeroTC(t, [][]float64{{5, 5}})
	as, err := MinMin{}.AssignBatch(c, aware, []int{0}, []float64{100, 0})
	if err != nil {
		t.Fatal(err)
	}
	if as[0].Machine != 1 || as[0].DecisionCompletion != 5 {
		t.Fatalf("assignment %+v ignored initial availability", as[0])
	}
}

func TestChargedMakespan(t *testing.T) {
	c := withTC(t, [][]float64{{10, 10}, {10, 10}}, [][]int{{0, 6}, {0, 6}})
	as := []Assignment{{Req: 0, Machine: 0}, {Req: 1, Machine: 1}}
	// Machine 0 charged 10 (TC=0), machine 1 charged 19 (TC=6, +90%).
	ms, err := ChargedMakespan(c, aware, as, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if ms != 19 {
		t.Fatalf("charged makespan = %g, want 19", ms)
	}
	// Unaware charges flat 50%: both machines 15.
	ms, err = ChargedMakespan(c, unaware, as, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if ms != 15 {
		t.Fatalf("unaware charged makespan = %g, want 15", ms)
	}
	if _, err := ChargedMakespan(c, aware, []Assignment{{Req: 0, Machine: 9}}, []float64{0, 0}); err == nil {
		t.Fatal("accepted assignment to unknown machine")
	}
}
