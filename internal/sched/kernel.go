package sched

import (
	"fmt"
	"math"
	"sync"
)

// This file holds the optimized batch-mapping kernels behind MinMin,
// MaxMin, Sufferage and Duplex.  The naive implementations they replace
// live in reference.go; the two are kept assignment-for-assignment
// identical (see kernel_equiv_test.go and FuzzKernelEquivalence).
//
// The classic formulation of the batch heuristics rescans all remaining
// (task, machine) pairs after every commitment — O(T²·M) per batch.  But a
// commitment changes exactly one machine's availability, and availability
// only ever increases, so a task's cached best (first-minimum) completion
// pair stays valid unless its cached best — or, for Sufferage, second-best
// — machine is the one that changed.  The kernels cache the
// (best, second-best) pair per task and recompute a row lazily only when
// its cached machines are invalidated, bringing the common case to
// O(T² + T·M·k) where k is the (small) number of invalidations per round.
//
// Tie-breaking contract (must match the reference scans exactly):
//   - within a task's row, the lowest-indexed machine attaining the
//     minimum wins (ascending scan, strict-< replacement);
//   - across tasks, the lowest task position in the meta-request wins
//     (the reference scans `remaining` in ascending-position order with a
//     strict comparison; swap-deletion here permutes the set, so the rule
//     is restored explicitly by comparing task positions on value ties).
//
// All scratch lives in a pooled kernelState so steady-state batch mapping
// performs no heap allocation beyond the returned schedule — and none at
// all through the AssignBatchInto entry points when the caller recycles
// the destination slice.

// BatchInto is implemented by batch heuristics that can append the
// schedule into a caller-provided slice, enabling allocation-free
// steady-state mapping.  The returned slice is dst (grown as needed) and
// follows the same ordering contract as AssignBatch.
type BatchInto interface {
	AssignBatchInto(c Costs, p Policy, reqs []int, avail []float64, dst []Assignment) ([]Assignment, error)
}

// kernelState is the reusable scratch of the batch kernels.  States are
// pooled; every slice is length-managed by grow and fully (re)initialised
// by the kernel that checks the state out, so stale contents are harmless.
type kernelState struct {
	table []float64 // decision ECCs, len T*M, row stride M
	avail []float64 // working copy of the availability vector

	remaining []int // task positions not yet committed

	// Cached completion pairs per task position: best is the
	// first-minimum of the row scan, second the second-smallest value
	// (with the machine the scan attributed it to).
	bestM   []int
	bestD   []float64
	secondM []int
	secondD []float64

	// Sufferage sweep scratch, hoisted out of the per-iteration loop.
	holder   []int
	sufferOf []float64
	doneOf   []float64
	assigned []bool

	// Lazy-invalidation stamps for Sufferage: a cached pair is stale iff
	// its best or second-best machine changed at or after the sweep the
	// pair was computed in.
	changedAt []int
	cachedAt  []int
}

var kernelPool = sync.Pool{New: func() any { return new(kernelState) }}

// asgBufPool recycles auxiliary schedules (Duplex's second candidate).
var asgBufPool = sync.Pool{New: func() any { return new([]Assignment) }}

// grow returns s with length n, reallocating only when capacity is short.
// Contents are unspecified; callers initialise what they read.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// fill populates the flat decision-ECC table and the availability working
// copy for a T-task, M-machine batch.
func (ks *kernelState) fill(c Costs, p Policy, reqs []int, avail []float64) error {
	nt, nm := len(reqs), len(avail)
	ks.table = grow(ks.table, nt*nm)
	ks.avail = grow(ks.avail, nm)
	copy(ks.avail, avail)
	for i, r := range reqs {
		row := ks.table[i*nm : (i+1)*nm]
		for m := range row {
			eec := c.EEC(r, m)
			tc, err := c.TrustCost(r, m)
			if err != nil {
				return err
			}
			row[m] = eec + p.DecisionESC(eec, tc)
		}
	}
	return nil
}

// recomputePair rescans task position i's row against the current
// availability, caching the first-minimum (best) and second-smallest
// completion exactly as the reference scan does: ascending machine order,
// strict-< replacement.
func (ks *kernelState) recomputePair(i, nm int) {
	row := ks.table[i*nm : (i+1)*nm]
	a := ks.avail
	bm, sm := -1, -1
	bd, sd := math.Inf(1), math.Inf(1)
	for m, t := range row {
		done := a[m] + t
		switch {
		case done < bd:
			sd, sm = bd, bm
			bd, bm = done, m
		case done < sd:
			sd, sm = done, m
		}
	}
	ks.bestM[i], ks.bestD[i] = bm, bd
	ks.secondM[i], ks.secondD[i] = sm, sd
}

// minMaxMinKernel is the incremental Min-min (pickMax=false) / Max-min
// (pickMax=true) kernel.  It emits the same assignment sequence as
// referenceMinMaxMin.
func minMaxMinKernel(c Costs, p Policy, reqs []int, avail []float64, pickMax bool, dst []Assignment) ([]Assignment, error) {
	if err := validateBatch(c, p, reqs, avail); err != nil {
		return nil, err
	}
	nt, nm := len(reqs), len(avail)
	out := dst[:0]
	if nt == 0 {
		return out, nil
	}
	ks := kernelPool.Get().(*kernelState)
	defer kernelPool.Put(ks)
	ks.bestM = grow(ks.bestM, nt)
	ks.bestD = grow(ks.bestD, nt)
	ks.secondM = grow(ks.secondM, nt)
	ks.secondD = grow(ks.secondD, nt)
	ks.remaining = grow(ks.remaining, nt)
	if err := ks.fill(c, p, reqs, avail); err != nil {
		return nil, err
	}
	for i := 0; i < nt; i++ {
		ks.remaining[i] = i
		ks.recomputePair(i, nm)
	}
	rem := ks.remaining
	n := nt
	dirty := -1 // machine whose availability changed last commitment
	for n > 0 {
		chosenPos, chosenI, chosenM := -1, -1, -1
		chosenDone := math.Inf(1)
		if pickMax {
			chosenDone = math.Inf(-1)
		}
		for pos := 0; pos < n; pos++ {
			i := rem[pos]
			if ks.bestM[i] == dirty {
				ks.recomputePair(i, nm)
			}
			bd := ks.bestD[i]
			better := bd < chosenDone
			if pickMax {
				better = bd > chosenDone
			}
			if better || (bd == chosenDone && i < chosenI) {
				chosenDone, chosenI, chosenPos, chosenM = bd, i, pos, ks.bestM[i]
			}
		}
		if chosenM < 0 {
			return nil, fmt.Errorf("sched: no feasible (task, machine) pair in batch")
		}
		out = append(out, Assignment{
			Req:                reqs[chosenI],
			Machine:            chosenM,
			DecisionCompletion: chosenDone,
		})
		ks.avail[chosenM] = chosenDone
		dirty = chosenM
		n--
		rem[chosenPos] = rem[n] // swap-delete; order restored via tie rule
	}
	return out, nil
}

// sufferageKernel is the incremental Sufferage kernel; it emits the same
// assignment sequence as referenceSufferage.
func sufferageKernel(c Costs, p Policy, reqs []int, avail []float64, dst []Assignment) ([]Assignment, error) {
	if err := validateBatch(c, p, reqs, avail); err != nil {
		return nil, err
	}
	nt, nm := len(reqs), len(avail)
	out := dst[:0]
	if nt == 0 {
		return out, nil
	}
	ks := kernelPool.Get().(*kernelState)
	defer kernelPool.Put(ks)
	ks.bestM = grow(ks.bestM, nt)
	ks.bestD = grow(ks.bestD, nt)
	ks.secondM = grow(ks.secondM, nt)
	ks.secondD = grow(ks.secondD, nt)
	ks.remaining = grow(ks.remaining, nt)
	ks.cachedAt = grow(ks.cachedAt, nt)
	ks.assigned = grow(ks.assigned, nt)
	ks.holder = grow(ks.holder, nm)
	ks.sufferOf = grow(ks.sufferOf, nm)
	ks.doneOf = grow(ks.doneOf, nm)
	ks.changedAt = grow(ks.changedAt, nm)
	if err := ks.fill(c, p, reqs, avail); err != nil {
		return nil, err
	}
	for i := 0; i < nt; i++ {
		ks.remaining[i] = i
		ks.recomputePair(i, nm)
		ks.cachedAt[i] = 0
		ks.assigned[i] = false
	}
	for m := 0; m < nm; m++ {
		ks.changedAt[m] = -1
	}
	rem := ks.remaining
	n := nt
	for sweep := 0; n > 0; sweep++ {
		for m := 0; m < nm; m++ {
			ks.holder[m] = -1
		}
		claimed := 0
		// The reference sweeps unassigned tasks in ascending request
		// order; rem is compacted stably below so the order matches.
		for pos := 0; pos < n; pos++ {
			i := rem[pos]
			bm, sm := ks.bestM[i], ks.secondM[i]
			if bm < 0 {
				return nil, fmt.Errorf("sched: no feasible machine for batch task %d", reqs[i])
			}
			if ks.changedAt[bm] >= ks.cachedAt[i] || (sm >= 0 && ks.changedAt[sm] >= ks.cachedAt[i]) {
				ks.recomputePair(i, nm)
				ks.cachedAt[i] = sweep
				bm = ks.bestM[i]
				if bm < 0 {
					return nil, fmt.Errorf("sched: no feasible machine for batch task %d", reqs[i])
				}
			}
			bd, sd := ks.bestD[i], ks.secondD[i]
			suffer := sd - bd
			if math.IsInf(sd, 1) {
				// Single eligible machine: sufferage is undefined; treat
				// as zero so first-come wins.
				suffer = 0
			}
			if ks.holder[bm] == -1 {
				ks.holder[bm] = i
				ks.sufferOf[bm] = suffer
				ks.doneOf[bm] = bd
				claimed++
			} else if suffer > ks.sufferOf[bm] {
				// Evict the smaller sufferer; it waits for the next
				// iteration.
				ks.holder[bm] = i
				ks.sufferOf[bm] = suffer
				ks.doneOf[bm] = bd
			}
		}
		if claimed == 0 {
			return nil, fmt.Errorf("sched: Sufferage made no progress with %d tasks left", n)
		}
		for m := 0; m < nm; m++ {
			i := ks.holder[m]
			if i == -1 {
				continue
			}
			ks.assigned[i] = true
			out = append(out, Assignment{
				Req:                reqs[i],
				Machine:            m,
				DecisionCompletion: ks.doneOf[m],
			})
			ks.avail[m] = ks.doneOf[m]
			ks.changedAt[m] = sweep
		}
		k := 0
		for pos := 0; pos < n; pos++ {
			if i := rem[pos]; !ks.assigned[i] {
				rem[k] = i
				k++
			}
		}
		n = k
	}
	return out, nil
}
