package sched

import (
	"testing"
	"testing/quick"

	"gridtrust/internal/rng"
)

// The incremental kernels must emit *identical* assignment sequences to
// the naive reference implementations — same requests, same machines, same
// decision completions, same order — on every instance, including
// tie-heavy and single-machine ones.  These tests are the contract that
// licenses every optimisation in kernel.go.

// equivPolicies are the three cost policies the repo ships.
func equivPolicies() []Policy {
	return []Policy{
		MustTrustAware(DefaultTCWeight),
		MustTrustUnaware(DefaultFlatOverheadPct),
		MustTrustBlind(DefaultTCWeight),
	}
}

// assertSameSchedule fails unless the two schedules are element-wise
// identical (exact float equality: the kernels perform the same arithmetic
// in the same order, so results must be bit-equal).
func assertSameSchedule(t *testing.T, label string, got, want []Assignment) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: optimized emitted %d assignments, reference %d", label, len(got), len(want))
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("%s: assignment %d differs: optimized %+v, reference %+v",
				label, k, got[k], want[k])
		}
	}
}

// checkEquivalence runs all three kernels against their references on one
// instance.
func checkEquivalence(t *testing.T, c Costs, p Policy, reqs []int, avail []float64) {
	t.Helper()
	refMin, err1 := referenceMinMaxMin(c, p, reqs, avail, false)
	optMin, err2 := (MinMin{}).AssignBatch(c, p, reqs, avail)
	if (err1 == nil) != (err2 == nil) {
		t.Fatalf("Min-min error mismatch: reference %v, optimized %v", err1, err2)
	}
	if err1 == nil {
		assertSameSchedule(t, "Min-min", optMin, refMin)
	}

	refMax, err1 := referenceMinMaxMin(c, p, reqs, avail, true)
	optMax, err2 := (MaxMin{}).AssignBatch(c, p, reqs, avail)
	if (err1 == nil) != (err2 == nil) {
		t.Fatalf("Max-min error mismatch: reference %v, optimized %v", err1, err2)
	}
	if err1 == nil {
		assertSameSchedule(t, "Max-min", optMax, refMax)
	}

	refSuf, err1 := referenceSufferage(c, p, reqs, avail)
	optSuf, err2 := (Sufferage{}).AssignBatch(c, p, reqs, avail)
	if (err1 == nil) != (err2 == nil) {
		t.Fatalf("Sufferage error mismatch: reference %v, optimized %v", err1, err2)
	}
	if err1 == nil {
		assertSameSchedule(t, "Sufferage", optSuf, refSuf)
	}
}

// TestKernelEquivalenceRandom drives randomized instances of varied shape
// through every kernel under every policy.
func TestKernelEquivalenceRandom(t *testing.T) {
	src := rng.New(20260805)
	for trial := 0; trial < 150; trial++ {
		tasks := 1 + src.Intn(48)
		machines := 1 + src.Intn(12)
		c := randomInstance(src, tasks, machines)
		avail := make([]float64, machines)
		for m := range avail {
			avail[m] = src.Float64() * 200
		}
		for _, p := range equivPolicies() {
			checkEquivalence(t, c, p, reqRange(tasks), avail)
		}
	}
}

// TestKernelEquivalenceTieHeavy draws EECs from a tiny integer set with
// zero trust cost so duplicate completion times are everywhere; the
// kernels must break every tie exactly as the references do.
func TestKernelEquivalenceTieHeavy(t *testing.T) {
	src := rng.New(77)
	for trial := 0; trial < 200; trial++ {
		tasks := 1 + src.Intn(24)
		machines := 1 + src.Intn(8)
		exec := make([][]float64, tasks)
		for i := range exec {
			exec[i] = make([]float64, machines)
			for m := range exec[i] {
				exec[i][m] = float64(1 + src.Intn(3))
			}
		}
		c, err := NewMatrixCosts(exec, nil)
		if err != nil {
			t.Fatal(err)
		}
		avail := make([]float64, machines)
		for m := range avail {
			avail[m] = float64(src.Intn(4))
		}
		p := MustTrustUnaware(DefaultFlatOverheadPct)
		checkEquivalence(t, c, p, reqRange(tasks), avail)
	}
}

// TestKernelEquivalenceDegenerate pins the adversarial shapes named in the
// kernel contract: single machine, single task, constant matrix, and a
// request subset in permuted order.
func TestKernelEquivalenceDegenerate(t *testing.T) {
	p := MustTrustAware(DefaultTCWeight)

	// Single machine: Sufferage's second-best is +Inf.
	single, err := NewMatrixCosts([][]float64{{3}, {5}, {1}, {5}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalence(t, single, p, reqRange(4), []float64{2})

	// Constant matrix: every completion ties with every other.
	flat, err := NewMatrixCosts([][]float64{{7, 7, 7}, {7, 7, 7}, {7, 7, 7}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalence(t, flat, p, reqRange(3), []float64{0, 0, 0})

	// Permuted subset: the meta-request need not be 0..n-1 in order.
	src := rng.New(5)
	c := randomInstance(src, 12, 4)
	reqs := []int{9, 2, 11, 0, 5, 7}
	checkEquivalence(t, c, p, reqs, []float64{1, 0, 3, 0})

	// Single task.
	checkEquivalence(t, c, p, []int{4}, []float64{0, 9, 0, 1})
}

// TestKernelEquivalenceQuick is a testing/quick property over packed
// random instances, complementing the table-driven trials above.
func TestKernelEquivalenceQuick(t *testing.T) {
	src := rng.New(424242)
	f := func(tasksRaw, machinesRaw, availRaw uint8) bool {
		tasks := int(tasksRaw%20) + 1
		machines := int(machinesRaw%6) + 1
		c := randomInstance(src, tasks, machines)
		avail := make([]float64, machines)
		for m := range avail {
			avail[m] = float64(availRaw%8) * src.Float64()
		}
		p := MustTrustAware(DefaultTCWeight)
		refMin, err := referenceMinMaxMin(c, p, reqRange(tasks), avail, false)
		if err != nil {
			return false
		}
		optMin, err := (MinMin{}).AssignBatch(c, p, reqRange(tasks), avail)
		if err != nil || len(optMin) != len(refMin) {
			return false
		}
		for k := range refMin {
			if optMin[k] != refMin[k] {
				return false
			}
		}
		refSuf, err := referenceSufferage(c, p, reqRange(tasks), avail)
		if err != nil {
			return false
		}
		optSuf, err := (Sufferage{}).AssignBatch(c, p, reqRange(tasks), avail)
		if err != nil || len(optSuf) != len(refSuf) {
			return false
		}
		for k := range refSuf {
			if optSuf[k] != refSuf[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestAssignBatchIntoReusesBuffer verifies the Into entry points append
// into the supplied slice (no fresh backing array when capacity suffices)
// and still match AssignBatch.
func TestAssignBatchIntoReusesBuffer(t *testing.T) {
	src := rng.New(13)
	c := randomInstance(src, 30, 6)
	avail := make([]float64, 6)
	p := MustTrustAware(DefaultTCWeight)
	for _, h := range []BatchInto{MinMin{}, MaxMin{}, Sufferage{}, Duplex{}} {
		plain, err := h.(Batch).AssignBatch(c, p, reqRange(30), avail)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]Assignment, 0, 64)
		into, err := h.AssignBatchInto(c, p, reqRange(30), avail, buf)
		if err != nil {
			t.Fatal(err)
		}
		if &into[0] != &buf[:1][0] {
			t.Fatalf("%s: AssignBatchInto did not reuse the supplied buffer", h.(Batch).Name())
		}
		assertSameSchedule(t, h.(Batch).Name()+" Into", into, plain)
	}
}

// TestKernelSteadyStateAllocs asserts the zero-allocation contract of the
// Into entry points once buffers are warm.
func TestKernelSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector; alloc counts are meaningless")
	}
	src := rng.New(99)
	c := randomInstance(src, 64, 8)
	avail := make([]float64, 8)
	reqs := reqRange(64)
	p := MustTrustAware(DefaultTCWeight)
	for _, h := range []BatchInto{MinMin{}, MaxMin{}, Sufferage{}, Duplex{}} {
		buf := make([]Assignment, 0, 64)
		// Warm the kernel pool (and Duplex's aux pool) first.
		if _, err := h.AssignBatchInto(c, p, reqs, avail, buf); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(20, func() {
			out, err := h.AssignBatchInto(c, p, reqs, avail, buf)
			if err != nil {
				t.Fatal(err)
			}
			_ = out
		})
		if allocs != 0 {
			t.Errorf("%s: %v allocs/op in steady state, want 0", h.(Batch).Name(), allocs)
		}
	}
}
