// Package sched implements the mapping heuristics of the paper (Section 4)
// and its reference [10] (Maheswaran, Ali, Siegel, Hensgen, Freund —
// "Dynamic mapping of a class of independent tasks onto heterogeneous
// computing systems"): the immediate-mode heuristics OLB, MET, MCT, KPB
// and SA, and the batch-mode heuristics Min-min, Max-min, Sufferage and
// Duplex.  Every heuristic runs either trust-aware or trust-unaware via a
// cost Policy.
//
// Cost vocabulary (Section 4.1):
//
//	EEC(M_i, t)  expected execution cost
//	ESC(M_i, t)  expected security cost
//	ECC = EEC + ESC   expected completion cost
//
// Trust-aware:   ESC = EEC × (TC × 15)/100, TC ∈ [0,6] from the ETS table.
// Trust-unaware: ESC = EEC × 50/100 — but the mapper does not see it:
// "the security overhead is not considered when mapping" (Section 5.3).
// A Policy therefore exposes two views: the DecisionESC the heuristic
// minimises, and the ChargedESC the simulator bills.
package sched

import "fmt"

// DefaultTCWeight is the paper's "arbitrarily chosen" weight of 15 for the
// trust cost: with TC averaging 3, trust-aware ESC averages 45% of EEC.
const DefaultTCWeight = 15.0

// DefaultFlatOverheadPct is the flat 50% security overhead charged when the
// RMS does not consider trust.
const DefaultFlatOverheadPct = 50.0

// Policy decides how security cost enters the mapping decision and the
// charged completion cost.
type Policy struct {
	// Name labels the policy in reports ("trust-aware"/"trust-unaware").
	Name string

	// DecisionESC is the security cost the heuristic sees when ranking
	// machines.
	DecisionESC func(eec float64, tc int) float64

	// ChargedESC is the security cost actually incurred when the task
	// runs.
	ChargedESC func(eec float64, tc int) float64

	// decForm/chForm describe the closed form of the two ESC functions
	// when the policy was built by a package constructor, letting hot
	// loops inline the arithmetic instead of calling through the func
	// values.  Hand-assembled Policy literals keep the zero ESCOpaque
	// form and take the generic path.
	decForm, chForm     ESCForm
	decWeight, chWeight float64
}

// ESCForm classifies a policy's ESC function for fused hot loops.  A
// non-opaque form MUST compute, operation for operation, the same float
// expression as the corresponding func field: the simulator's fast path
// relies on that to stay bit-identical to the reference path.
type ESCForm int

const (
	// ESCOpaque: unknown shape; call the func field.
	ESCOpaque ESCForm = iota
	// ESCZero: ESC = 0 (the decision view of unaware/blind policies).
	ESCZero
	// ESCLinear: ESC = eec * (float64(tc) * weight) / 100.
	ESCLinear
	// ESCFlat: ESC = eec * weight / 100, independent of TC.
	ESCFlat
)

// DecisionForm returns the closed form of DecisionESC and its weight.
func (p Policy) DecisionForm() (ESCForm, float64) { return p.decForm, p.decWeight }

// ChargedForm returns the closed form of ChargedESC and its weight.
func (p Policy) ChargedForm() (ESCForm, float64) { return p.chForm, p.chWeight }

// TrustAware returns the paper's trust-aware policy with the given TC
// weight (use DefaultTCWeight for the paper's 15).  Decision and charged
// costs coincide: the scheduler optimises the cost the system pays.
func TrustAware(tcWeight float64) (Policy, error) {
	if tcWeight < 0 {
		return Policy{}, fmt.Errorf("sched: negative TC weight %g", tcWeight)
	}
	esc := func(eec float64, tc int) float64 {
		return eec * (float64(tc) * tcWeight) / 100
	}
	return Policy{
		Name: "trust-aware", DecisionESC: esc, ChargedESC: esc,
		decForm: ESCLinear, decWeight: tcWeight,
		chForm: ESCLinear, chWeight: tcWeight,
	}, nil
}

// TrustUnaware returns the paper's trust-unaware policy: the mapper ignores
// security entirely (decision ESC = 0) while the system pays a flat
// overhead of flatPct percent of EEC on every task.
func TrustUnaware(flatPct float64) (Policy, error) {
	if flatPct < 0 {
		return Policy{}, fmt.Errorf("sched: negative flat overhead %g%%", flatPct)
	}
	return Policy{
		Name:        "trust-unaware",
		DecisionESC: func(float64, int) float64 { return 0 },
		ChargedESC:  func(eec float64, _ int) float64 { return eec * flatPct / 100 },
		decForm:     ESCZero,
		chForm:      ESCFlat, chWeight: flatPct,
	}, nil
}

// TrustBlind returns the policy of the paper's Section 5.2 theorem: the
// mapper ignores security (decision ESC = 0) but the system is charged the
// *same* TC-based ESC a trust-aware run would pay.  This isolates the value
// of informed placement: both policies pay identical per-pair costs, and
// only the assignment differs.  The theorem — trust-aware makespan <=
// trust-unaware makespan under the same heuristic — is stated in exactly
// this setting (both makespans sum EEC + ESC over the chosen mapping).
func TrustBlind(tcWeight float64) (Policy, error) {
	if tcWeight < 0 {
		return Policy{}, fmt.Errorf("sched: negative TC weight %g", tcWeight)
	}
	return Policy{
		Name:        "trust-blind",
		DecisionESC: func(float64, int) float64 { return 0 },
		ChargedESC: func(eec float64, tc int) float64 {
			return eec * (float64(tc) * tcWeight) / 100
		},
		decForm: ESCZero,
		chForm:  ESCLinear, chWeight: tcWeight,
	}, nil
}

// MustTrustBlind is the panicking form of TrustBlind.
func MustTrustBlind(tcWeight float64) Policy {
	p, err := TrustBlind(tcWeight)
	if err != nil {
		panic(err)
	}
	return p
}

// MustTrustAware and MustTrustUnaware panic on invalid arguments; they are
// for statically valid literals in tests, examples and the bench harness.
func MustTrustAware(tcWeight float64) Policy {
	p, err := TrustAware(tcWeight)
	if err != nil {
		panic(err)
	}
	return p
}

// MustTrustUnaware is the panicking form of TrustUnaware.
func MustTrustUnaware(flatPct float64) Policy {
	p, err := TrustUnaware(flatPct)
	if err != nil {
		panic(err)
	}
	return p
}

// validatePolicy guards heuristic entry points.
func validatePolicy(p Policy) error {
	if p.DecisionESC == nil || p.ChargedESC == nil {
		return fmt.Errorf("sched: policy %q missing ESC functions", p.Name)
	}
	return nil
}
