package sched

import (
	"testing"
	"testing/quick"

	"gridtrust/internal/rng"
)

// randomInstance draws a random EEC+TC instance.
func randomInstance(src *rng.Source, tasks, machines int) *MatrixCosts {
	exec := make([][]float64, tasks)
	tc := make([][]int, tasks)
	for i := 0; i < tasks; i++ {
		exec[i] = make([]float64, machines)
		tc[i] = make([]int, machines)
		for m := 0; m < machines; m++ {
			exec[i][m] = src.Uniform(1, 100) * src.Uniform(1, 10)
			tc[i][m] = src.IntRange(0, 6)
		}
	}
	c, err := NewMatrixCosts(exec, tc)
	if err != nil {
		panic(err)
	}
	return c
}

// runImmediate replays an instance through an immediate heuristic charging
// each step, returning the charged makespan.
func runImmediate(t *testing.T, h Immediate, c Costs, p Policy) float64 {
	t.Helper()
	avail := make([]float64, c.NumMachines())
	for r := 0; r < c.NumRequests(); r++ {
		a, err := h.AssignOne(c, p, r, avail)
		if err != nil {
			t.Fatal(err)
		}
		ecc, err := ChargedECC(c, p, r, a.Machine)
		if err != nil {
			t.Fatal(err)
		}
		avail[a.Machine] += ecc
	}
	ms := avail[0]
	for _, v := range avail[1:] {
		if v > ms {
			ms = v
		}
	}
	return ms
}

// TestTheoremTrustAwareMakespanBaseCase verifies the Section 5.2 theorem's
// base case exactly: for a single task, the trust-aware MCT's charged
// makespan is <= the trust-blind scheduler's, where both pay the same
// TC-based ESC and only the mapping differs.
func TestTheoremTrustAwareMakespanBaseCase(t *testing.T) {
	src := rng.New(2002)
	awareP := MustTrustAware(DefaultTCWeight)
	blindP := MustTrustBlind(DefaultTCWeight)
	f := func(seedByte uint8) bool {
		_ = seedByte
		c := randomInstance(src, 1, 5)
		a := runImmediate(t, MCT{}, c, awareP)
		b := runImmediate(t, MCT{}, c, blindP)
		return a <= b+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestTheoremTrustAwareMakespanEmpirical measures the end-to-end claim over
// many multi-task instances.  Greedy non-optimality permits rare
// per-instance inversions (the paper's induction glosses over this), but
// the mean improvement must be decisively positive and violations rare.
func TestTheoremTrustAwareMakespanEmpirical(t *testing.T) {
	src := rng.New(777)
	awareP := MustTrustAware(DefaultTCWeight)
	blindP := MustTrustBlind(DefaultTCWeight)
	const trials = 300
	violations := 0
	sumAware, sumBlind := 0.0, 0.0
	for i := 0; i < trials; i++ {
		c := randomInstance(src, 30, 5)
		a := runImmediate(t, MCT{}, c, awareP)
		b := runImmediate(t, MCT{}, c, blindP)
		sumAware += a
		sumBlind += b
		if a > b+1e-9 {
			violations++
		}
	}
	if sumAware >= sumBlind {
		t.Fatalf("trust-aware mean makespan %g not below trust-blind %g",
			sumAware/trials, sumBlind/trials)
	}
	// Empirically ~12% of instances invert under greedy MCT; the theorem
	// holds in the mean and per-step, not per-instance.
	if violations > trials/5 {
		t.Fatalf("theorem violated in %d/%d instances — more than greedy noise", violations, trials)
	}
	t.Logf("aware mean %.1f vs blind mean %.1f, violations %d/%d (greedy noise)",
		sumAware/trials, sumBlind/trials, violations, trials)
}

// TestTheoremBatchHeuristics checks the same empirical dominance for the
// batch heuristics used in the paper.
func TestTheoremBatchHeuristics(t *testing.T) {
	src := rng.New(555)
	awareP := MustTrustAware(DefaultTCWeight)
	blindP := MustTrustBlind(DefaultTCWeight)
	for _, h := range []Batch{MinMin{}, Sufferage{}} {
		const trials = 150
		sumAware, sumBlind := 0.0, 0.0
		for i := 0; i < trials; i++ {
			c := randomInstance(src, 30, 5)
			reqs := reqRange(30)
			avail := make([]float64, 5)
			asA, err := h.AssignBatch(c, awareP, reqs, avail)
			if err != nil {
				t.Fatal(err)
			}
			asB, err := h.AssignBatch(c, blindP, reqs, avail)
			if err != nil {
				t.Fatal(err)
			}
			a, err := ChargedMakespan(c, awareP, asA, avail)
			if err != nil {
				t.Fatal(err)
			}
			b, err := ChargedMakespan(c, blindP, asB, avail)
			if err != nil {
				t.Fatal(err)
			}
			sumAware += a
			sumBlind += b
		}
		if sumAware >= sumBlind {
			t.Errorf("%s: trust-aware mean makespan %g not below trust-blind %g",
				h.Name(), sumAware/trials, sumBlind/trials)
		}
	}
}

// TestAwareBeatsFlatUnawareOnAverage mirrors the actual simulation protocol
// of Tables 4-9 (flat 50%% charge for the unaware scheduler) at the static
// scheduling level.
func TestAwareBeatsFlatUnawareOnAverage(t *testing.T) {
	src := rng.New(31337)
	awareP := MustTrustAware(DefaultTCWeight)
	unawareP := MustTrustUnaware(DefaultFlatOverheadPct)
	const trials = 200
	sumAware, sumUnaware := 0.0, 0.0
	for i := 0; i < trials; i++ {
		c := randomInstance(src, 50, 5)
		sumAware += runImmediate(t, MCT{}, c, awareP)
		sumUnaware += runImmediate(t, MCT{}, c, unawareP)
	}
	improvement := (sumUnaware - sumAware) / sumUnaware * 100
	if improvement <= 0 {
		t.Fatalf("trust-aware shows no improvement: %g%%", improvement)
	}
	t.Logf("static MCT improvement: %.1f%%", improvement)
}
