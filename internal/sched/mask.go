package sched

import "math"

// Availability masking
//
// The fault subsystem (internal/fault) crashes machines mid-run.  A down
// machine must never receive work, so the scheduler contract is extended:
// an availability of +Inf marks a machine as unavailable, and every
// deterministic heuristic — immediate (MCT, MET, OLB, KPB, SA) and batch
// (Min-min, Max-min, Sufferage, Duplex) — is required to skip masked
// machines and to fail with an error when every machine is masked.  Finite
// availabilities behave exactly as before, so fault-free runs are
// bit-identical to the pre-masking kernels.
//
// The metaheuristics (GA, SAnneal, GSA) seed from Min-min and only
// permute assignments toward lower makespan; a masked machine's Inf
// completion dominates any vector using it, but they do not hard-guarantee
// avoidance — fault-aware simulations double-check their output.

// Masked is the availability value that excludes a machine from every
// mapping decision.
func Masked() float64 { return math.Inf(1) }

// IsMasked reports whether an availability value marks a down machine.
func IsMasked(avail float64) bool { return math.IsInf(avail, 1) }

// MaskAvail writes into dst the availability vector with down machines
// masked: dst[m] = avail[m] when up[m], +Inf otherwise.  dst may alias
// avail for in-place masking.  It returns dst.
func MaskAvail(avail []float64, up []bool, dst []float64) []float64 {
	for m := range avail {
		if up[m] {
			dst[m] = avail[m]
		} else {
			dst[m] = math.Inf(1)
		}
	}
	return dst
}
