package sched

import (
	"fmt"
	"math"
)

// Immediate is an on-line (immediate-mode) mapping heuristic: it maps each
// request to a machine as the request arrives, given the current machine
// availability vector.  It returns the chosen machine and the decision
// completion time.  Implementations must not mutate avail.
type Immediate interface {
	Name() string
	AssignOne(c Costs, p Policy, req int, avail []float64) (Assignment, error)
}

// MCT is the minimum-completion-time heuristic: "assigns each task to the
// machine that results in that task's earliest completion time ... As a
// task arrives, all the machines are examined" (Section 4.1).  The
// trust-aware variant minimises availability + EEC + ESC; the unaware
// variant effectively minimises availability + EEC.
type MCT struct{}

// Name returns "MCT".
func (MCT) Name() string { return "MCT" }

// AssignOne maps req to the machine minimising decision completion time.
// Ties break toward the lower machine index, deterministically.
func (MCT) AssignOne(c Costs, p Policy, req int, avail []float64) (Assignment, error) {
	if err := validateInstance(c, p, avail); err != nil {
		return Assignment{}, err
	}
	best := -1
	bestDone := math.Inf(1)
	for m := 0; m < c.NumMachines(); m++ {
		ecc, err := decisionECC(c, p, req, m)
		if err != nil {
			return Assignment{}, err
		}
		if done := avail[m] + ecc; done < bestDone {
			bestDone = done
			best = m
		}
	}
	if best < 0 {
		return Assignment{}, fmt.Errorf("sched: MCT found no machine for request %d", req)
	}
	return Assignment{Req: req, Machine: best, DecisionCompletion: bestDone}, nil
}

// MET is the minimum-execution-time heuristic: it ignores machine load and
// picks the machine with the lowest execution cost for the task.  It is
// the classic load-imbalance baseline from [10].
type MET struct{}

// Name returns "MET".
func (MET) Name() string { return "MET" }

// AssignOne maps req to the machine with minimum decision ECC, ignoring
// availability (load), but never a masked (down) machine.
func (MET) AssignOne(c Costs, p Policy, req int, avail []float64) (Assignment, error) {
	if err := validateInstance(c, p, avail); err != nil {
		return Assignment{}, err
	}
	best := -1
	bestCost := math.Inf(1)
	for m := 0; m < c.NumMachines(); m++ {
		if IsMasked(avail[m]) {
			continue
		}
		ecc, err := decisionECC(c, p, req, m)
		if err != nil {
			return Assignment{}, err
		}
		if ecc < bestCost {
			bestCost = ecc
			best = m
		}
	}
	if best < 0 {
		return Assignment{}, fmt.Errorf("sched: MET found no available machine for request %d", req)
	}
	return Assignment{Req: req, Machine: best, DecisionCompletion: avail[best] + bestCost}, nil
}

// OLB is opportunistic load balancing: assign the task to the machine that
// becomes available soonest, regardless of execution cost — the pure
// load-balance baseline from [10].
type OLB struct{}

// Name returns "OLB".
func (OLB) Name() string { return "OLB" }

// AssignOne maps req to the machine with minimum availability.
func (OLB) AssignOne(c Costs, p Policy, req int, avail []float64) (Assignment, error) {
	if err := validateInstance(c, p, avail); err != nil {
		return Assignment{}, err
	}
	best := 0
	for m := 1; m < len(avail); m++ {
		if avail[m] < avail[best] {
			best = m
		}
	}
	if IsMasked(avail[best]) {
		return Assignment{}, fmt.Errorf("sched: OLB found no available machine for request %d", req)
	}
	ecc, err := decisionECC(c, p, req, best)
	if err != nil {
		return Assignment{}, err
	}
	return Assignment{Req: req, Machine: best, DecisionCompletion: avail[best] + ecc}, nil
}

// KPB is the k-percent-best heuristic from [10]: consider only the
// ⌈k·M/100⌉ machines with the lowest execution cost for the task, then
// pick the one with the earliest completion time among them.  KPB(100) is
// MCT; KPB(100/M) is MET.
type KPB struct {
	// Percent is k in (0,100].
	Percent float64
}

// Name returns e.g. "KPB(50)".
func (k KPB) Name() string { return fmt.Sprintf("KPB(%g)", k.Percent) }

// AssignOne maps req per the k-percent-best rule.
func (k KPB) AssignOne(c Costs, p Policy, req int, avail []float64) (Assignment, error) {
	if err := validateInstance(c, p, avail); err != nil {
		return Assignment{}, err
	}
	if k.Percent <= 0 || k.Percent > 100 {
		return Assignment{}, fmt.Errorf("sched: KPB percent %g outside (0,100]", k.Percent)
	}
	nm := c.NumMachines()
	subset := int(math.Ceil(k.Percent * float64(nm) / 100))
	if subset < 1 {
		subset = 1
	}
	// Rank machines by decision ECC (execution view).
	type me struct {
		m   int
		ecc float64
	}
	ranked := make([]me, nm)
	for m := 0; m < nm; m++ {
		ecc, err := decisionECC(c, p, req, m)
		if err != nil {
			return Assignment{}, err
		}
		ranked[m] = me{m, ecc}
	}
	// Insertion sort by (ecc, machine index): nm is small.
	for i := 1; i < nm; i++ {
		v := ranked[i]
		j := i - 1
		for j >= 0 && (ranked[j].ecc > v.ecc || (ranked[j].ecc == v.ecc && ranked[j].m > v.m)) {
			ranked[j+1] = ranked[j]
			j--
		}
		ranked[j+1] = v
	}
	best := -1
	bestDone := math.Inf(1)
	// Scan the k-percent-best subset first; when every machine in it is
	// masked (down), widen to the remaining ranked machines so a crash
	// inside the preferred subset degrades the choice instead of failing
	// the run.
	for i := 0; i < nm; i++ {
		if i >= subset && best >= 0 {
			break
		}
		m := ranked[i].m
		if IsMasked(avail[m]) {
			continue
		}
		if done := avail[m] + ranked[i].ecc; done < bestDone ||
			(done == bestDone && m < best) {
			bestDone = done
			best = m
		}
	}
	if best < 0 {
		return Assignment{}, fmt.Errorf("sched: KPB found no available machine for request %d", req)
	}
	return Assignment{Req: req, Machine: best, DecisionCompletion: bestDone}, nil
}

// SA is the switching algorithm from [10]: it alternates between MCT and
// MET based on the load balance index r = min(avail)/max(avail).  When the
// system is well balanced (r >= High) it uses MET to exploit affinities;
// once imbalance grows (r <= Low) it switches back to MCT to rebalance.
// SA carries state across calls and is therefore a pointer type.
type SA struct {
	// Low and High are the switching thresholds, 0 <= Low <= High <= 1.
	Low, High float64

	useMET bool
}

// NewSA constructs a switching heuristic with validated thresholds.
func NewSA(low, high float64) (*SA, error) {
	if low < 0 || high > 1 || low > high {
		return nil, fmt.Errorf("sched: SA thresholds (%g,%g) invalid", low, high)
	}
	return &SA{Low: low, High: high}, nil
}

// Name returns e.g. "SA(0.6,0.9)".
func (s *SA) Name() string { return fmt.Sprintf("SA(%g,%g)", s.Low, s.High) }

// AssignOne maps req with MET or MCT according to the current load-balance
// regime.
func (s *SA) AssignOne(c Costs, p Policy, req int, avail []float64) (Assignment, error) {
	if err := validateInstance(c, p, avail); err != nil {
		return Assignment{}, err
	}
	minA, maxA := avail[0], avail[0]
	for _, a := range avail[1:] {
		if a < minA {
			minA = a
		}
		if a > maxA {
			maxA = a
		}
	}
	ratio := 1.0
	if maxA > 0 {
		ratio = minA / maxA
	}
	if s.useMET && ratio <= s.Low {
		s.useMET = false
	} else if !s.useMET && ratio >= s.High {
		s.useMET = true
	}
	if s.useMET {
		return MET{}.AssignOne(c, p, req, avail)
	}
	return MCT{}.AssignOne(c, p, req, avail)
}

// ImmediateByName resolves an immediate-mode heuristic from its canonical
// name.  Recognised: "mct", "met", "olb", "kpb" (k=50), "sa".
func ImmediateByName(name string) (Immediate, error) {
	switch name {
	case "mct", "MCT":
		return MCT{}, nil
	case "met", "MET":
		return MET{}, nil
	case "olb", "OLB":
		return OLB{}, nil
	case "kpb", "KPB":
		return KPB{Percent: 50}, nil
	case "sa", "SA":
		return NewSA(0.6, 0.9)
	default:
		return nil, fmt.Errorf("sched: unknown immediate heuristic %q", name)
	}
}
