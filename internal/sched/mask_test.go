package sched

import (
	"math"
	"testing"

	"gridtrust/internal/rng"
)

// maskedImmediates lists every deterministic immediate heuristic under the
// masking contract.
func maskedImmediates(t *testing.T) []Immediate {
	t.Helper()
	sa, err := NewSA(0.6, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	return []Immediate{MCT{}, MET{}, OLB{}, KPB{Percent: 50}, sa}
}

// maskedBatches lists every deterministic batch heuristic under the
// masking contract.
func maskedBatches() []Batch {
	return []Batch{MinMin{}, MaxMin{}, Sufferage{}, Duplex{}}
}

func TestMaskAvail(t *testing.T) {
	avail := []float64{1, 2, 3}
	up := []bool{true, false, true}
	dst := make([]float64, 3)
	got := MaskAvail(avail, up, dst)
	if got[0] != 1 || !IsMasked(got[1]) || got[2] != 3 {
		t.Fatalf("MaskAvail = %v", got)
	}
	// In-place aliasing must work too.
	MaskAvail(avail, up, avail)
	if avail[0] != 1 || !IsMasked(avail[1]) || avail[2] != 3 {
		t.Fatalf("in-place MaskAvail = %v", avail)
	}
	if IsMasked(0) || IsMasked(math.Inf(-1)) || !IsMasked(Masked()) {
		t.Fatal("IsMasked misclassifies")
	}
}

// TestImmediateNeverMapsToMaskedMachine drives every immediate heuristic
// over random instances with random partial masks: the chosen machine
// must always be up.
func TestImmediateNeverMapsToMaskedMachine(t *testing.T) {
	src := rng.New(31)
	p := MustTrustAware(DefaultTCWeight)
	for trial := 0; trial < 200; trial++ {
		nm := src.IntRange(2, 8)
		c := randomInstance(src, 6, nm)
		avail := make([]float64, nm)
		up := make([]bool, nm)
		nUp := 0
		for m := range up {
			avail[m] = src.Uniform(0, 50)
			up[m] = src.Bool(0.6)
			if up[m] {
				nUp++
			}
		}
		if nUp == 0 {
			up[src.Intn(nm)] = true
		}
		MaskAvail(avail, up, avail)
		for _, h := range maskedImmediates(t) {
			for r := 0; r < c.NumRequests(); r++ {
				a, err := h.AssignOne(c, p, r, avail)
				if err != nil {
					t.Fatalf("%s: %v", h.Name(), err)
				}
				if a.Machine < 0 || a.Machine >= nm || !up[a.Machine] {
					t.Fatalf("%s mapped request %d to down machine %d", h.Name(), r, a.Machine)
				}
			}
		}
	}
}

// TestBatchNeverMapsToMaskedMachine is the batch-mode counterpart.
func TestBatchNeverMapsToMaskedMachine(t *testing.T) {
	src := rng.New(32)
	p := MustTrustAware(DefaultTCWeight)
	reqs := []int{0, 1, 2, 3, 4, 5}
	for trial := 0; trial < 100; trial++ {
		nm := src.IntRange(2, 8)
		c := randomInstance(src, len(reqs), nm)
		avail := make([]float64, nm)
		up := make([]bool, nm)
		nUp := 0
		for m := range up {
			avail[m] = src.Uniform(0, 50)
			up[m] = src.Bool(0.6)
			if up[m] {
				nUp++
			}
		}
		if nUp == 0 {
			up[src.Intn(nm)] = true
		}
		MaskAvail(avail, up, avail)
		for _, h := range maskedBatches() {
			as, err := h.AssignBatch(c, p, reqs, avail)
			if err != nil {
				t.Fatalf("%s: %v", h.Name(), err)
			}
			for _, a := range as {
				if a.Machine < 0 || a.Machine >= nm || !up[a.Machine] {
					t.Fatalf("%s mapped request %d to down machine %d", h.Name(), a.Req, a.Machine)
				}
			}
		}
	}
}

// TestAllMaskedErrors: with every machine down, heuristics must fail
// loudly, never return a sentinel machine.
func TestAllMaskedErrors(t *testing.T) {
	src := rng.New(33)
	c := randomInstance(src, 3, 4)
	p := MustTrustAware(DefaultTCWeight)
	avail := []float64{Masked(), Masked(), Masked(), Masked()}
	for _, h := range maskedImmediates(t) {
		if _, err := h.AssignOne(c, p, 0, avail); err == nil {
			t.Errorf("%s accepted an all-masked grid", h.Name())
		}
	}
	for _, h := range maskedBatches() {
		if _, err := h.AssignBatch(c, p, []int{0, 1}, avail); err == nil {
			t.Errorf("%s accepted an all-masked grid", h.Name())
		}
	}
}

// TestMaskingEquivalentToRemoval: for MCT and Min-min, masking machine m
// must pick the same machines as deleting column m from the instance.
func TestMaskingEquivalentToRemoval(t *testing.T) {
	src := rng.New(34)
	p := MustTrustAware(DefaultTCWeight)
	for trial := 0; trial < 50; trial++ {
		const nm = 5
		tasks := 4
		c := randomInstance(src, tasks, nm)
		down := src.Intn(nm)
		avail := make([]float64, nm)
		for m := range avail {
			avail[m] = src.Uniform(0, 20)
		}
		// Build the reduced instance without the down machine.
		exec := make([][]float64, tasks)
		tc := make([][]int, tasks)
		for i := 0; i < tasks; i++ {
			for m := 0; m < nm; m++ {
				if m == down {
					continue
				}
				ecc := c.EEC(i, m)
				v, err := c.TrustCost(i, m)
				if err != nil {
					t.Fatal(err)
				}
				exec[i] = append(exec[i], ecc)
				tc[i] = append(tc[i], v)
			}
		}
		reduced, err := NewMatrixCosts(exec, tc)
		if err != nil {
			t.Fatal(err)
		}
		redAvail := make([]float64, 0, nm-1)
		for m := 0; m < nm; m++ {
			if m != down {
				redAvail = append(redAvail, avail[m])
			}
		}
		// toFull maps reduced machine indices back to full ones.
		toFull := func(m int) int {
			if m >= down {
				return m + 1
			}
			return m
		}
		masked := make([]float64, nm)
		up := make([]bool, nm)
		for m := range up {
			up[m] = m != down
		}
		MaskAvail(avail, up, masked)

		for r := 0; r < tasks; r++ {
			a1, err := MCT{}.AssignOne(c, p, r, masked)
			if err != nil {
				t.Fatal(err)
			}
			a2, err := MCT{}.AssignOne(reduced, p, r, redAvail)
			if err != nil {
				t.Fatal(err)
			}
			if a1.Machine != toFull(a2.Machine) {
				t.Fatalf("MCT: masked chose %d, removal chose %d", a1.Machine, toFull(a2.Machine))
			}
		}
		reqs := make([]int, tasks)
		for i := range reqs {
			reqs[i] = i
		}
		b1, err := MinMin{}.AssignBatch(c, p, reqs, masked)
		if err != nil {
			t.Fatal(err)
		}
		b2, err := MinMin{}.AssignBatch(reduced, p, reqs, redAvail)
		if err != nil {
			t.Fatal(err)
		}
		for i := range b1 {
			if b1[i].Req != b2[i].Req || b1[i].Machine != toFull(b2[i].Machine) {
				t.Fatalf("MinMin: masked %+v, removal %+v", b1[i], b2[i])
			}
		}
	}
}
