package sched

import (
	"math"
	"testing"
)

// zeroTC builds a MatrixCosts with all trust costs zero so decision costs
// reduce to plain EEC under any policy.
func zeroTC(t *testing.T, exec [][]float64) *MatrixCosts {
	t.Helper()
	c, err := NewMatrixCosts(exec, nil)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func withTC(t *testing.T, exec [][]float64, tc [][]int) *MatrixCosts {
	t.Helper()
	c, err := NewMatrixCosts(exec, tc)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

var aware = MustTrustAware(DefaultTCWeight)
var unaware = MustTrustUnaware(DefaultFlatOverheadPct)

func TestMCTPicksEarliestCompletion(t *testing.T) {
	c := zeroTC(t, [][]float64{{3, 5}})
	a, err := MCT{}.AssignOne(c, aware, 0, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if a.Machine != 0 || a.DecisionCompletion != 3 {
		t.Fatalf("MCT chose machine %d done %g, want 0/3", a.Machine, a.DecisionCompletion)
	}
	// Loaded machine 0 flips the choice: 4+3=7 vs 0+5=5.
	a, err = MCT{}.AssignOne(c, aware, 0, []float64{4, 0})
	if err != nil {
		t.Fatal(err)
	}
	if a.Machine != 1 || a.DecisionCompletion != 5 {
		t.Fatalf("MCT chose machine %d done %g, want 1/5", a.Machine, a.DecisionCompletion)
	}
}

func TestMCTTrustAwareAvoidsCostlyTrust(t *testing.T) {
	// Machine 0 is faster raw but carries TC=6 (+90%); machine 1 is
	// slower but fully trusted.  Aware must pick machine 1, unaware
	// machine 0.
	c := withTC(t, [][]float64{{100, 120}}, [][]int{{6, 0}})
	avail := []float64{0, 0}
	aw, err := MCT{}.AssignOne(c, aware, 0, avail)
	if err != nil {
		t.Fatal(err)
	}
	if aw.Machine != 1 {
		t.Fatalf("aware MCT chose machine %d, want 1 (ECC 190 vs 120)", aw.Machine)
	}
	un, err := MCT{}.AssignOne(c, unaware, 0, avail)
	if err != nil {
		t.Fatal(err)
	}
	if un.Machine != 0 {
		t.Fatalf("unaware MCT chose machine %d, want 0 (sees raw 100 vs 120)", un.Machine)
	}
}

// TestMCTPerStepOptimality encodes the theorem's base case: among all
// machines, the trust-aware MCT choice minimises charged ECC + avail.
func TestMCTPerStepOptimality(t *testing.T) {
	c := withTC(t,
		[][]float64{{10, 20, 30}, {30, 20, 10}, {15, 15, 15}},
		[][]int{{6, 3, 0}, {0, 3, 6}, {1, 2, 3}})
	avail := []float64{5, 0, 2}
	for r := 0; r < 3; r++ {
		a, err := MCT{}.AssignOne(c, aware, r, avail)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ChargedECC(c, aware, r, a.Machine)
		if err != nil {
			t.Fatal(err)
		}
		for m := 0; m < 3; m++ {
			alt, err := ChargedECC(c, aware, r, m)
			if err != nil {
				t.Fatal(err)
			}
			if avail[m]+alt < avail[a.Machine]+got-1e-12 {
				t.Fatalf("request %d: machine %d beats chosen %d", r, m, a.Machine)
			}
		}
	}
}

func TestMETIgnoresLoad(t *testing.T) {
	c := zeroTC(t, [][]float64{{3, 5}})
	a, err := MET{}.AssignOne(c, aware, 0, []float64{1000, 0})
	if err != nil {
		t.Fatal(err)
	}
	if a.Machine != 0 {
		t.Fatalf("MET chose machine %d, want 0 despite load", a.Machine)
	}
	if a.DecisionCompletion != 1003 {
		t.Fatalf("MET decision completion %g, want 1003", a.DecisionCompletion)
	}
}

func TestOLBIgnoresCost(t *testing.T) {
	c := zeroTC(t, [][]float64{{1, 1000}})
	a, err := OLB{}.AssignOne(c, aware, 0, []float64{5, 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.Machine != 1 {
		t.Fatalf("OLB chose machine %d, want the least-loaded 1", a.Machine)
	}
}

func TestKPBBoundaries(t *testing.T) {
	exec := [][]float64{{10, 20, 30, 40}}
	c := zeroTC(t, exec)
	avail := []float64{100, 0, 0, 0}

	// KPB(100) == MCT.
	full, err := KPB{Percent: 100}.AssignOne(c, aware, 0, avail)
	if err != nil {
		t.Fatal(err)
	}
	mct, err := MCT{}.AssignOne(c, aware, 0, avail)
	if err != nil {
		t.Fatal(err)
	}
	if full.Machine != mct.Machine {
		t.Fatalf("KPB(100) chose %d, MCT chose %d", full.Machine, mct.Machine)
	}

	// KPB(25) on 4 machines considers only the single best-exec machine
	// (machine 0), i.e. behaves like MET.
	quarter, err := KPB{Percent: 25}.AssignOne(c, aware, 0, avail)
	if err != nil {
		t.Fatal(err)
	}
	if quarter.Machine != 0 {
		t.Fatalf("KPB(25) chose %d, want the MET machine 0", quarter.Machine)
	}

	if _, err := (KPB{Percent: 0}).AssignOne(c, aware, 0, avail); err == nil {
		t.Fatal("KPB accepted percent 0")
	}
	if _, err := (KPB{Percent: 150}).AssignOne(c, aware, 0, avail); err == nil {
		t.Fatal("KPB accepted percent 150")
	}
}

func TestKPBMiddleGround(t *testing.T) {
	// Machines ranked by exec: m0(10), m1(20), m2(30), m3(40).  KPB(50)
	// considers {m0, m1}; with m0 heavily loaded it must pick m1 even
	// though m2 would finish sooner.
	c := zeroTC(t, [][]float64{{10, 20, 30, 40}})
	avail := []float64{100, 50, 0, 0}
	a, err := KPB{Percent: 50}.AssignOne(c, aware, 0, avail)
	if err != nil {
		t.Fatal(err)
	}
	if a.Machine != 1 {
		t.Fatalf("KPB(50) chose %d, want 1", a.Machine)
	}
}

func TestSASwitchesRegimes(t *testing.T) {
	sa, err := NewSA(0.5, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	c := zeroTC(t, [][]float64{{10, 100}})
	// Balanced system (ratio 1 >= 0.9): SA should behave like MET.
	a, err := sa.AssignOne(c, aware, 0, []float64{50, 50})
	if err != nil {
		t.Fatal(err)
	}
	if a.Machine != 0 {
		t.Fatalf("balanced SA chose %d, want MET machine 0", a.Machine)
	}
	// Badly imbalanced (ratio 10/100 <= 0.5): SA switches to MCT;
	// 100+10=110 vs 10+100=110 tie -> machine 0... make it decisive:
	a, err = sa.AssignOne(c, aware, 0, []float64{200, 10})
	if err != nil {
		t.Fatal(err)
	}
	if a.Machine != 1 {
		t.Fatalf("imbalanced SA chose %d, want MCT machine 1", a.Machine)
	}
	if _, err := NewSA(0.9, 0.5); err == nil {
		t.Fatal("NewSA accepted inverted thresholds")
	}
	if _, err := NewSA(-0.1, 0.5); err == nil {
		t.Fatal("NewSA accepted negative threshold")
	}
}

func TestImmediateByName(t *testing.T) {
	for _, name := range []string{"mct", "met", "olb", "kpb", "sa"} {
		h, err := ImmediateByName(name)
		if err != nil || h == nil {
			t.Errorf("ImmediateByName(%q) failed: %v", name, err)
		}
	}
	if _, err := ImmediateByName("nope"); err == nil {
		t.Error("unknown heuristic accepted")
	}
}

func TestImmediateValidation(t *testing.T) {
	c := zeroTC(t, [][]float64{{1, 2}})
	if _, err := (MCT{}).AssignOne(nil, aware, 0, []float64{0, 0}); err == nil {
		t.Error("accepted nil costs")
	}
	if _, err := (MCT{}).AssignOne(c, Policy{}, 0, []float64{0, 0}); err == nil {
		t.Error("accepted empty policy")
	}
	if _, err := (MCT{}).AssignOne(c, aware, 0, []float64{0}); err == nil {
		t.Error("accepted short availability vector")
	}
}

func TestNewMatrixCostsValidation(t *testing.T) {
	if _, err := NewMatrixCosts(nil, nil); err == nil {
		t.Error("accepted nil exec")
	}
	if _, err := NewMatrixCosts([][]float64{{1, 2}, {3}}, nil); err == nil {
		t.Error("accepted ragged exec")
	}
	if _, err := NewMatrixCosts([][]float64{{-1}}, nil); err == nil {
		t.Error("accepted negative EEC")
	}
	if _, err := NewMatrixCosts([][]float64{{1}}, [][]int{{7}}); err == nil {
		t.Error("accepted TC > 6")
	}
	if _, err := NewMatrixCosts([][]float64{{1}}, [][]int{{1}, {2}}); err == nil {
		t.Error("accepted TC/EEC row mismatch")
	}
	if _, err := NewMatrixCosts([][]float64{{1, 2}}, [][]int{{1}}); err == nil {
		t.Error("accepted ragged TC")
	}
}

func TestPolicyESCFormulas(t *testing.T) {
	// Paper Section 4.1: aware ESC = EEC*(TC*15)/100, unaware = EEC*50/100.
	eec := 200.0
	for tc := 0; tc <= 6; tc++ {
		want := eec * float64(tc) * 15 / 100
		if got := aware.DecisionESC(eec, tc); math.Abs(got-want) > 1e-12 {
			t.Errorf("aware ESC(tc=%d) = %g, want %g", tc, got, want)
		}
		if got := aware.ChargedESC(eec, tc); math.Abs(got-want) > 1e-12 {
			t.Errorf("aware charged ESC(tc=%d) = %g, want %g", tc, got, want)
		}
		if got := unaware.DecisionESC(eec, tc); got != 0 {
			t.Errorf("unaware decision ESC = %g, want 0", got)
		}
		if got := unaware.ChargedESC(eec, tc); got != 100 {
			t.Errorf("unaware charged ESC = %g, want 100", got)
		}
	}
	// Average TC of 3 gives 45% vs the flat 50% — the paper's calibration.
	if got := aware.ChargedESC(eec, 3); got != 0.45*eec {
		t.Errorf("aware ESC at mean TC = %g, want 45%% of EEC", got)
	}
	blind := MustTrustBlind(DefaultTCWeight)
	if blind.DecisionESC(eec, 6) != 0 {
		t.Error("blind decision ESC should be 0")
	}
	if blind.ChargedESC(eec, 6) != aware.ChargedESC(eec, 6) {
		t.Error("blind charged ESC should match aware")
	}
}

func TestPolicyConstructorsReject(t *testing.T) {
	if _, err := TrustAware(-1); err == nil {
		t.Error("TrustAware accepted negative weight")
	}
	if _, err := TrustUnaware(-1); err == nil {
		t.Error("TrustUnaware accepted negative overhead")
	}
	if _, err := TrustBlind(-1); err == nil {
		t.Error("TrustBlind accepted negative weight")
	}
}
