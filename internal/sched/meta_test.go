package sched

import (
	"testing"

	"gridtrust/internal/rng"
)

func metaHeuristics() []Batch {
	return []Batch{NewGeneticAlgorithm(7), NewSimulatedAnnealing(7)}
}

func TestMetaAssignEveryRequestOnce(t *testing.T) {
	src := rng.New(3)
	c := randomInstance(src, 24, 5)
	reqs := reqRange(24)
	avail := make([]float64, 5)
	for _, h := range metaHeuristics() {
		as, err := h.AssignBatch(c, aware, reqs, avail)
		if err != nil {
			t.Fatalf("%s: %v", h.Name(), err)
		}
		seen := map[int]bool{}
		for _, a := range as {
			if seen[a.Req] {
				t.Fatalf("%s assigned %d twice", h.Name(), a.Req)
			}
			seen[a.Req] = true
			if a.Machine < 0 || a.Machine >= 5 {
				t.Fatalf("%s used machine %d", h.Name(), a.Machine)
			}
		}
		if len(seen) != 24 {
			t.Fatalf("%s assigned %d of 24", h.Name(), len(seen))
		}
	}
}

// TestMetaNeverWorseThanMinMin: both metaheuristics are seeded with the
// Min-min schedule and track the best solution, so their decision makespan
// cannot exceed Min-min's.
func TestMetaNeverWorseThanMinMin(t *testing.T) {
	src := rng.New(11)
	for trial := 0; trial < 20; trial++ {
		c := randomInstance(src, 30, 5)
		reqs := reqRange(30)
		avail := make([]float64, 5)
		mm, err := (MinMin{}).AssignBatch(c, aware, reqs, avail)
		if err != nil {
			t.Fatal(err)
		}
		mmMS := decisionMakespan(mm, avail)
		for _, h := range metaHeuristics() {
			as, err := h.AssignBatch(c, aware, reqs, avail)
			if err != nil {
				t.Fatal(err)
			}
			ms := decisionMakespan(as, avail)
			if ms > mmMS+1e-9 {
				t.Fatalf("trial %d: %s makespan %.2f worse than Min-min %.2f",
					trial, h.Name(), ms, mmMS)
			}
		}
	}
}

// TestMetaUsuallyBeatsMinMin: across many instances the metaheuristics
// should strictly improve on Min-min a healthy fraction of the time —
// otherwise the search is not searching.
func TestMetaUsuallyBeatsMinMin(t *testing.T) {
	src := rng.New(13)
	improvedGA, improvedSA := 0, 0
	const trials = 15
	for trial := 0; trial < trials; trial++ {
		c := randomInstance(src, 40, 5)
		reqs := reqRange(40)
		avail := make([]float64, 5)
		mm, err := (MinMin{}).AssignBatch(c, aware, reqs, avail)
		if err != nil {
			t.Fatal(err)
		}
		mmMS := decisionMakespan(mm, avail)
		ga, err := NewGeneticAlgorithm(uint64(trial)).AssignBatch(c, aware, reqs, avail)
		if err != nil {
			t.Fatal(err)
		}
		if decisionMakespan(ga, avail) < mmMS-1e-9 {
			improvedGA++
		}
		sa, err := NewSimulatedAnnealing(uint64(trial)).AssignBatch(c, aware, reqs, avail)
		if err != nil {
			t.Fatal(err)
		}
		if decisionMakespan(sa, avail) < mmMS-1e-9 {
			improvedSA++
		}
	}
	if improvedGA < trials/3 {
		t.Errorf("GA improved on Min-min only %d/%d times", improvedGA, trials)
	}
	if improvedSA < trials/3 {
		t.Errorf("SAnneal improved on Min-min only %d/%d times", improvedSA, trials)
	}
}

func TestMetaDeterministicBySeed(t *testing.T) {
	src := rng.New(17)
	c := randomInstance(src, 20, 4)
	reqs := reqRange(20)
	avail := make([]float64, 4)
	for _, build := range []func(uint64) Batch{
		func(s uint64) Batch { return NewGeneticAlgorithm(s) },
		func(s uint64) Batch { return NewSimulatedAnnealing(s) },
	} {
		a, err := build(5).AssignBatch(c, aware, reqs, avail)
		if err != nil {
			t.Fatal(err)
		}
		b, err := build(5).AssignBatch(c, aware, reqs, avail)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("same seed diverged at assignment %d", i)
			}
		}
	}
}

func TestMetaParameterValidation(t *testing.T) {
	c := zeroTC(t, [][]float64{{1, 2}})
	avail := []float64{0, 0}
	badGA := []GeneticAlgorithm{
		{Population: 1, Generations: 10, CrossoverRate: 0.5, MutationRate: 0.1},
		{Population: 10, Generations: 0, CrossoverRate: 0.5, MutationRate: 0.1},
		{Population: 10, Generations: 10, CrossoverRate: 1.5, MutationRate: 0.1},
		{Population: 10, Generations: 10, CrossoverRate: 0.5, MutationRate: -1},
		{Population: 10, Generations: 10, CrossoverRate: 0.5, MutationRate: 0.1, Patience: -1},
	}
	for i, g := range badGA {
		if _, err := g.AssignBatch(c, aware, []int{0}, avail); err == nil {
			t.Errorf("bad GA %d accepted", i)
		}
	}
	badSA := []SimulatedAnnealing{
		{InitialTempFactor: 0, Cooling: 0.9, MinTempFraction: 0.001},
		{InitialTempFactor: 0.1, Cooling: 1.0, MinTempFraction: 0.001},
		{InitialTempFactor: 0.1, Cooling: 0.9, MinTempFraction: 0},
		{InitialTempFactor: 0.1, Cooling: 0.9, MovesPerTemp: -1, MinTempFraction: 0.001},
	}
	for i, s := range badSA {
		if _, err := s.AssignBatch(c, aware, []int{0}, avail); err == nil {
			t.Errorf("bad SA %d accepted", i)
		}
	}
}

func TestMetaEmptyBatch(t *testing.T) {
	c := zeroTC(t, [][]float64{{1, 2}})
	for _, h := range metaHeuristics() {
		as, err := h.AssignBatch(c, aware, nil, []float64{0, 0})
		if err != nil || len(as) != 0 {
			t.Errorf("%s on empty batch: %v, %v", h.Name(), as, err)
		}
	}
}

func TestMetaRespectsAvailability(t *testing.T) {
	// One request, machine 0 heavily loaded: both must pick machine 1.
	c := zeroTC(t, [][]float64{{5, 5}})
	for _, h := range metaHeuristics() {
		as, err := h.AssignBatch(c, aware, []int{0}, []float64{1000, 0})
		if err != nil {
			t.Fatal(err)
		}
		if as[0].Machine != 1 {
			t.Errorf("%s ignored availability: %+v", h.Name(), as[0])
		}
	}
}

func TestGSAInvariants(t *testing.T) {
	src := rng.New(21)
	c := randomInstance(src, 25, 5)
	reqs := reqRange(25)
	avail := make([]float64, 5)
	gsa := NewGSA(4)
	as, err := gsa.AssignBatch(c, aware, reqs, avail)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, a := range as {
		if seen[a.Req] || a.Machine < 0 || a.Machine >= 5 {
			t.Fatalf("GSA produced invalid assignment %+v", a)
		}
		seen[a.Req] = true
	}
	if len(seen) != 25 {
		t.Fatalf("GSA assigned %d of 25", len(seen))
	}
	// Never worse than Min-min (seeded + best-tracked).
	mm, err := (MinMin{}).AssignBatch(c, aware, reqs, avail)
	if err != nil {
		t.Fatal(err)
	}
	if decisionMakespan(as, avail) > decisionMakespan(mm, avail)+1e-9 {
		t.Fatalf("GSA makespan %.2f worse than Min-min %.2f",
			decisionMakespan(as, avail), decisionMakespan(mm, avail))
	}
	// Deterministic by seed.
	again, err := NewGSA(4).AssignBatch(c, aware, reqs, avail)
	if err != nil {
		t.Fatal(err)
	}
	for i := range as {
		if as[i] != again[i] {
			t.Fatal("GSA not deterministic for a fixed seed")
		}
	}
}

func TestGSAValidation(t *testing.T) {
	c := zeroTC(t, [][]float64{{1, 2}})
	bad := NewGSA(1)
	bad.Cooling = 1.5
	if _, err := bad.AssignBatch(c, aware, []int{0}, []float64{0, 0}); err == nil {
		t.Error("bad cooling accepted")
	}
	bad = NewGSA(1)
	bad.InitialTempFactor = 0
	if _, err := bad.AssignBatch(c, aware, []int{0}, []float64{0, 0}); err == nil {
		t.Error("zero temperature accepted")
	}
	bad = NewGSA(1)
	bad.GA.Population = 0
	if _, err := bad.AssignBatch(c, aware, []int{0}, []float64{0, 0}); err == nil {
		t.Error("bad GA parameters accepted")
	}
}
