// Package prof wires the runtime/pprof CPU and heap profilers into the
// command-line tools: every binary that runs sweeps (cmd/sweep,
// cmd/trustsim) accepts -cpuprofile/-memprofile so a perf regression can
// be profiled on the exact workload that exposed it, without rebuilding
// with ad-hoc instrumentation.  See EXPERIMENTS.md for the workflow.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath and arranges a heap profile at
// memPath; either path may be empty to skip that profile.  It returns a
// stop function that finishes both profiles — call it exactly once,
// before the process exits (os.Exit skips defers, so call it explicitly
// on early-exit paths).
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: start CPU profile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "prof: close CPU profile: %v\n", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "prof: %v\n", err)
				return
			}
			runtime.GC() // materialise final heap state before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "prof: write heap profile: %v\n", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "prof: close heap profile: %v\n", err)
			}
		}
	}, nil
}
