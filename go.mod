module gridtrust

go 1.22
