#!/usr/bin/env sh
# Regenerates BENCH_fleet.json: the sharded-fleet serving benchmark.
#
# Two closed-loop capacity runs on the same host, same total client
# count, fresh idempotency namespaces:
#   single journalled daemon, 9 clients          -> baseline aggregate RPS
#   3-shard fleet (ring + forwarding + gossip),  -> fleet aggregate RPS
#     9 clients pinned round-robin across shards
#
# Every run reconciles client totals against daemon metrics (fleet-wide
# summed durable anchors in the fleet run); gridload exits 3 on any
# imbalance, which aborts this script.  The script itself fails unless
# the fleet beats the single-daemon aggregate: each shard owns its own
# WAL, so group-commit fsync waits overlap across shards even on one
# core, and that win has to show up or the sharding is not paying rent.
# After the timed run it also requires trust gossip to have converged
# within the staleness bound.
set -eu

cd "$(dirname "$0")/.."

DUR=${DUR:-5s}
CLIENTS=${CLIENTS:-9}

go build -o /tmp/gridtrust-bench-daemon ./cmd/gridtrustd
go build -o /tmp/gridtrust-bench-gridctl ./cmd/gridctl
go build -o /tmp/gridtrust-bench-gridload ./cmd/gridload

bd=$(mktemp -d)
trap 'kill $pids 2> /dev/null || true; rm -rf "$bd"; rm -f /tmp/gridtrust-bench-daemon /tmp/gridtrust-bench-gridctl /tmp/gridtrust-bench-gridload' EXIT
pids=""

# --- baseline: one journalled daemon -----------------------------------
mkdir "$bd/base"
/tmp/gridtrust-bench-daemon -addr 127.0.0.1:0 -data "$bd/base" > "$bd/logb" 2>&1 &
bpid=$!
pids="$bpid"
addr=""
i=0
while [ -z "$addr" ] && [ "$i" -lt 100 ]; do
    sleep 0.1
    addr=$(sed -n 's/^gridtrustd listening on //p' "$bd/logb")
    i=$((i + 1))
done
test -n "$addr"
echo "bench-fleet: baseline, 1 daemon, $CLIENTS clients" >&2
/tmp/gridtrust-bench-gridload -addr "$addr" -clients "$CLIENTS" -duration "$DUR" \
    -seed 201 -key-prefix bf-base -format json > "$bd/base.json"
kill "$bpid"
wait "$bpid" 2> /dev/null || true
pids=""

# --- fleet: 3 shards, same total clients -------------------------------
printf '%s\n' '{"shards":[' \
    ' {"name":"s0","addr":"127.0.0.1:7451","trust_addr":"127.0.0.1:7454"},' \
    ' {"name":"s1","addr":"127.0.0.1:7452","trust_addr":"127.0.0.1:7455"},' \
    ' {"name":"s2","addr":"127.0.0.1:7453","trust_addr":"127.0.0.1:7456"}]}' > "$bd/fleet.json"
for i in 0 1 2; do
    mkdir "$bd/d$i"
    /tmp/gridtrust-bench-daemon -fleet "$bd/fleet.json" -shard "s$i" -data "$bd/d$i" \
        > "$bd/log$i" 2>&1 &
    pids="$pids $!"
done
for i in 0 1 2; do
    j=0
    while ! grep -q "^gridtrustd listening on " "$bd/log$i" && [ "$j" -lt 100 ]; do
        sleep 0.1
        j=$((j + 1))
    done
    grep -q "^gridtrustd listening on " "$bd/log$i"
done
echo "bench-fleet: fleet, 3 shards, $CLIENTS clients pinned round-robin" >&2
/tmp/gridtrust-bench-gridload -fleet "$bd/fleet.json" -clients "$CLIENTS" -duration "$DUR" \
    -seed 202 -key-prefix bf-fleet -format json > "$bd/fleet-run.json"
/tmp/gridtrust-bench-gridctl fleet gossip -config "$bd/fleet.json" -wait 10s > /dev/null
/tmp/gridtrust-bench-gridctl fleet metrics -config "$bd/fleet.json" > "$bd/fleet-metrics.txt"
kill $pids 2> /dev/null || true
pids=""

jq -n \
    --arg go "$(go version | awk '{print $3}')" \
    --arg dur "$DUR" \
    --argjson cpus "$(nproc)" \
    --argjson clients "$CLIENTS" \
    --slurpfile base "$bd/base.json" \
    --slurpfile fl "$bd/fleet-run.json" \
    '{
      benchmark: "3-shard gridtrustd fleet vs single journalled daemon (gridload closed loop)",
      go: $go, cpus: $cpus, duration_per_run: $dur, clients: $clients,
      note: "same host, same total client count; fleet run forwards mis-routed ops across shards, gossips trust claims, and reconciles durable anchors summed fleet-wide; each shard owns an independent WAL so group-commit fsync waits overlap",
      headline: {
        single_daemon_rps: ($base[0].throughput_rps),
        fleet_rps: ($fl[0].throughput_rps),
        fleet_speedup: ($fl[0].throughput_rps / $base[0].throughput_rps),
        fleet_submit_p99_ms: ($fl[0].submit_latency.p99_ms)
      },
      runs: {
        single_daemon: $base[0],
        fleet_3_shards: $fl[0]
      }
    }' > BENCH_fleet.json

echo "bench-fleet: wrote BENCH_fleet.json"
jq '.headline' BENCH_fleet.json
jq -e '.headline.fleet_speedup > 1' BENCH_fleet.json > /dev/null || {
    echo "bench-fleet: FAIL: fleet did not beat the single-daemon aggregate" >&2
    exit 1
}
