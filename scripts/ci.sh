#!/usr/bin/env sh
# Tier-1 verify flow.  Beyond the seed contract (build + test), it vets
# the whole module, race-tests the packages with real concurrency or
# shared scratch (the experiment engine's global pool, internal/sim's
# cell runners, internal/sched's pooled kernel state, the WAL's group
# commit, the daemon's journal), fuzzes every fuzz target briefly,
# smoke-runs every sweep mode through the engine, smoke-runs the
# journalled daemon demo, and proves checkpoint-resume: a SIGINT'd sweep
# resumed against its checkpoint directory prints byte-identical output.
set -eu

cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test ./..."
go test ./...

echo "==> go test -race ./internal/exp/... ./internal/fault/... ./internal/sched/... ./internal/sim/... ./internal/wal/... ./internal/rmswire/..."
go test -race ./internal/exp/... ./internal/fault/... ./internal/sched/... ./internal/sim/... ./internal/wal/... ./internal/rmswire/...

echo "==> fuzz smoke (every fuzz target, 5s each)"
for spec in \
    "./internal/wal FuzzWALRecover" \
    "./internal/wal FuzzWALRecoverSnapshot" \
    "./internal/sched FuzzKernelEquivalence" \
    "./internal/grid FuzzParseLevel" \
    "./internal/grid FuzzETSWith" \
    "./internal/grid FuzzLevelFromScore" \
    "./internal/trustwire FuzzReadFrame" \
    "./internal/trustwire FuzzApplyEntries" \
    "./internal/trustwire FuzzServerRespond"; do
    set -- $spec
    echo "    fuzz $1 $2"
    go test "$1" -run '^$' -fuzz "^$2\$" -fuzztime 5s > /dev/null
done

echo "==> sweep smoke (every mode, tiny grid)"
go build -o /tmp/gridtrust-ci-sweep ./cmd/sweep
/tmp/gridtrust-ci-sweep -list > /dev/null
for mode in heuristics tcweight heterogeneity batch machines etsrule rate evolving deadline staging fault; do
    echo "    sweep -mode $mode"
    /tmp/gridtrust-ci-sweep -mode "$mode" -reps 2 -tasks 20 -seed 1 > /dev/null
done
/tmp/gridtrust-ci-sweep -mode machines -reps 2 -tasks 20 -seed 1 -format json > /dev/null

echo "==> gridtrustd demo smoke (journalled)"
go build -o /tmp/gridtrust-ci-daemon ./cmd/gridtrustd
go build -o /tmp/gridtrust-ci-gridctl ./cmd/gridctl
dd=$(mktemp -d)
/tmp/gridtrust-ci-daemon -addr 127.0.0.1:0 -data "$dd" -demo | grep -q "demo: placed=5"
/tmp/gridtrust-ci-gridctl wal-info -data "$dd" | grep -q "live records"
rm -rf "$dd"
rm -f /tmp/gridtrust-ci-daemon /tmp/gridtrust-ci-gridctl

echo "==> sweep checkpoint-resume smoke (SIGINT, resume, diff)"
ckd=$(mktemp -d)
sweepargs="-mode machines -reps 20 -tasks 6000 -seed 5 -workers 1"
/tmp/gridtrust-ci-sweep $sweepargs > "$ckd/expected.txt"
# Interrupt a checkpointed run partway; completed cells are journalled.
/tmp/gridtrust-ci-sweep $sweepargs -checkpoint "$ckd/ck" > /dev/null 2>&1 &
pid=$!
sleep 1
kill -INT "$pid" 2> /dev/null || true
wait "$pid" || true
# The resumed run must emit output byte-identical to the uninterrupted one.
/tmp/gridtrust-ci-sweep $sweepargs -checkpoint "$ckd/ck" > "$ckd/resumed.txt"
cmp "$ckd/expected.txt" "$ckd/resumed.txt"
rm -rf "$ckd"
rm -f /tmp/gridtrust-ci-sweep

echo "ci: ok"
