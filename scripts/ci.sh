#!/usr/bin/env sh
# Tier-1 verify flow.  Beyond the seed contract (build + test), it vets
# the whole module, race-tests the packages with real concurrency or
# shared scratch (the experiment engine's global pool, internal/sim's
# cell runners, internal/sched's pooled kernel state, the WAL's group
# commit, the daemon's journal), fuzzes every fuzz target briefly,
# smoke-runs every sweep mode through the engine, smoke-runs the
# journalled daemon demo, and proves checkpoint-resume: a SIGINT'd sweep
# resumed against its checkpoint directory prints byte-identical output.
# The overload+drain stage runs a journalled daemon with admission limits,
# drives load through gridctl, SIGTERMs it, and requires a clean exit plus
# byte-identical stats from the replayed daemon.  The gridload stage
# SIGKILLs a journalled daemon mid-load and requires the driver's client
# totals to reconcile exactly with the replayed daemon's metrics.
set -eu

cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test ./..."
go test ./...

echo "==> go test -race ./internal/exp/... ./internal/fault/... ./internal/sched/... ./internal/sim/... ./internal/trust/... ./internal/wal/... ./internal/rmswire/... ./internal/metrics/... ./internal/load/..."
go test -race ./internal/exp/... ./internal/fault/... ./internal/sched/... ./internal/sim/... ./internal/trust/... ./internal/wal/... ./internal/rmswire/... ./internal/metrics/... ./internal/load/...

echo "==> fuzz smoke (every fuzz target, 5s each)"
for spec in \
    "./internal/wal FuzzWALRecover" \
    "./internal/wal FuzzWALRecoverSnapshot" \
    "./internal/sched FuzzKernelEquivalence" \
    "./internal/des FuzzQueueEquivalence" \
    "./internal/trust FuzzEngineEquivalence" \
    "./internal/trust FuzzModelEquivalence" \
    "./internal/grid FuzzParseLevel" \
    "./internal/grid FuzzETSWith" \
    "./internal/grid FuzzLevelFromScore" \
    "./internal/trustwire FuzzReadFrame" \
    "./internal/trustwire FuzzApplyEntries" \
    "./internal/trustwire FuzzServerRespond"; do
    set -- $spec
    echo "    fuzz $1 $2"
    go test "$1" -run '^$' -fuzz "^$2\$" -fuzztime 5s > /dev/null
done

echo "==> sweep smoke (every mode, tiny grid)"
go build -o /tmp/gridtrust-ci-sweep ./cmd/sweep
/tmp/gridtrust-ci-sweep -list > /dev/null
for mode in heuristics tcweight heterogeneity batch machines etsrule rate evolving deadline staging fault trustzoo; do
    echo "    sweep -mode $mode"
    /tmp/gridtrust-ci-sweep -mode "$mode" -reps 2 -tasks 20 -seed 1 > /dev/null
done
/tmp/gridtrust-ci-sweep -mode machines -reps 2 -tasks 20 -seed 1 -format json > /dev/null

echo "==> DES kernel byte-identity smoke (fast vs reference sweep output)"
kd=$(mktemp -d)
for mode in heuristics fault; do
    /tmp/gridtrust-ci-sweep -mode "$mode" -reps 2 -tasks 20 -seed 1 -des fast > "$kd/$mode-fast.txt"
    /tmp/gridtrust-ci-sweep -mode "$mode" -reps 2 -tasks 20 -seed 1 -des reference > "$kd/$mode-ref.txt"
    cmp "$kd/$mode-fast.txt" "$kd/$mode-ref.txt"
done
# Intra-replication sharding must not change a byte either.
/tmp/gridtrust-ci-sweep -mode heuristics -reps 2 -tasks 20 -seed 1 -des fast -intra 4 > "$kd/heuristics-intra.txt"
cmp "$kd/heuristics-fast.txt" "$kd/heuristics-intra.txt"
# The default trust model is the paper engine: selecting it explicitly
# must not change a byte of any sweep output.
for mode in heuristics fault; do
    /tmp/gridtrust-ci-sweep -mode "$mode" -reps 2 -tasks 20 -seed 1 -trust-model paper > "$kd/$mode-model.txt"
    cmp "$kd/$mode-fast.txt" "$kd/$mode-model.txt"
done
# Rival models are bit-deterministic under any worker/shard count.
/tmp/gridtrust-ci-sweep -mode fault -reps 2 -tasks 20 -seed 1 -trust-model purge -workers 1 > "$kd/fault-purge-w1.txt"
/tmp/gridtrust-ci-sweep -mode fault -reps 2 -tasks 20 -seed 1 -trust-model purge -workers 4 -intra 4 > "$kd/fault-purge-w4.txt"
cmp "$kd/fault-purge-w1.txt" "$kd/fault-purge-w4.txt"
rm -rf "$kd"

echo "==> gridtrustd demo smoke (journalled)"
go build -o /tmp/gridtrust-ci-daemon ./cmd/gridtrustd
go build -o /tmp/gridtrust-ci-gridctl ./cmd/gridctl
dd=$(mktemp -d)
/tmp/gridtrust-ci-daemon -addr 127.0.0.1:0 -data "$dd" -demo | grep -q "demo: placed=5"
/tmp/gridtrust-ci-gridctl wal-info -data "$dd" | grep -q "live records"
rm -rf "$dd"

echo "==> gridtrustd overload + drain smoke (limits on, SIGTERM, replay must match)"
dd=$(mktemp -d)
/tmp/gridtrust-ci-daemon -addr 127.0.0.1:0 -data "$dd" \
    -max-conns 8 -max-inflight 2 > "$dd/log" 2>&1 &
dpid=$!
addr=""
i=0
while [ -z "$addr" ] && [ "$i" -lt 100 ]; do
    sleep 0.1
    addr=$(sed -n 's/^gridtrustd listening on //p' "$dd/log")
    i=$((i + 1))
done
test -n "$addr"
/tmp/gridtrust-ci-gridctl -addr "$addr" health | grep -q "in-flight:"
# Discover the machine count by growing the EEC vector until the daemon
# accepts a submit (the topology is seed-drawn, so it is not known here).
eec="100"
n=1
while [ "$n" -le 64 ]; do
    if /tmp/gridtrust-ci-gridctl -addr "$addr" submit -client 0 \
        -activities 0 -rtl F -eec "$eec" > /dev/null 2>&1; then
        break
    fi
    n=$((n + 1))
    eec="$eec,100"
done
test "$n" -le 64
/tmp/gridtrust-ci-gridctl -addr "$addr" report -placement 1 -outcome 5 > /dev/null
reports=1
i=2
while [ "$i" -le 9 ]; do
    out=$(/tmp/gridtrust-ci-gridctl -addr "$addr" submit -client 0 \
        -activities 0 -rtl F -eec "$eec" -now "$i")
    pl=$(printf '%s\n' "$out" | sed -n 's/^placement \([0-9]*\):.*/\1/p')
    /tmp/gridtrust-ci-gridctl -addr "$addr" report -placement "$pl" \
        -outcome 5 -now "$i" > /dev/null
    reports=$((reports + 1))
    i=$((i + 1))
done
# Settle the monitoring agents so the pre-drain stats view is final.
i=0
while [ "$i" -lt 100 ]; do
    /tmp/gridtrust-ci-gridctl -addr "$addr" stats \
        | grep -q "agents processed:  $reports (" && break
    i=$((i + 1))
    sleep 0.1
done
/tmp/gridtrust-ci-gridctl -addr "$addr" stats > "$dd/stats-before.txt"
kill -TERM "$dpid"
wait "$dpid" # graceful drain must exit 0
grep -q "final checkpoint" "$dd/log"
grep -q "drained; exiting" "$dd/log"
# The replayed daemon must serve byte-identical stats.
/tmp/gridtrust-ci-daemon -addr 127.0.0.1:0 -data "$dd" \
    -max-conns 8 -max-inflight 2 > "$dd/log2" 2>&1 &
dpid=$!
addr=""
i=0
while [ -z "$addr" ] && [ "$i" -lt 100 ]; do
    sleep 0.1
    addr=$(sed -n 's/^gridtrustd listening on //p' "$dd/log2")
    i=$((i + 1))
done
test -n "$addr"
/tmp/gridtrust-ci-gridctl -addr "$addr" stats > "$dd/stats-after.txt"
cmp "$dd/stats-before.txt" "$dd/stats-after.txt"
# Drain over the wire: the daemon must exit 0 without a signal.
/tmp/gridtrust-ci-gridctl -addr "$addr" drain > /dev/null
wait "$dpid"
grep -q "draining: requested over the wire" "$dd/log2"
rm -rf "$dd"

echo "==> gridload smoke (limits on, mid-run SIGKILL+restart, books must balance)"
go build -o /tmp/gridtrust-ci-gridload ./cmd/gridload
ld=$(mktemp -d)
mkdir "$ld/data"
/tmp/gridtrust-ci-daemon -addr 127.0.0.1:0 -data "$ld/data" \
    -max-inflight 2 > "$ld/log" 2>&1 &
dpid=$!
addr=""
i=0
while [ -z "$addr" ] && [ "$i" -lt 100 ]; do
    sleep 0.1
    addr=$(sed -n 's/^gridtrustd listening on //p' "$ld/log")
    i=$((i + 1))
done
test -n "$addr"
# gridload exits 3 if its client totals do not reconcile with the
# daemon's {"op":"metrics"} counters, so the smoke is the exit code;
# the SIGKILL below lands mid-run and WAL replay must restore the
# durable anchors (placed, idem entries, open placements) exactly.
/tmp/gridtrust-ci-gridload -addr "$addr" -clients 4 -duration 2s \
    -seed 41 -max-attempts 80 -op-timeout 2s -format json > "$ld/run.json" &
lpid=$!
sleep 1
kill -KILL "$dpid"
wait "$dpid" 2> /dev/null || true
/tmp/gridtrust-ci-daemon -addr "$addr" -data "$ld/data" \
    -max-inflight 2 > "$ld/log2" 2>&1 &
dpid=$!
wait "$lpid"
grep -q '"daemon_restarted": true' "$ld/run.json"
grep -q '"unresolved": 0' "$ld/run.json"
# The metrics op and its CLI surface answer on the replayed daemon.
/tmp/gridtrust-ci-gridctl -addr "$addr" metrics | grep -q "placed"
/tmp/gridtrust-ci-gridctl -addr "$addr" metrics -format json \
    | grep -q '"start_unix_nanos"'
# Clean wire-drain exit closes the smoke.
/tmp/gridtrust-ci-gridctl -addr "$addr" drain > /dev/null
wait "$dpid"
grep -q "drained; exiting" "$ld/log2"
rm -rf "$ld"
rm -f /tmp/gridtrust-ci-daemon /tmp/gridtrust-ci-gridctl /tmp/gridtrust-ci-gridload

echo "==> sweep checkpoint-resume smoke (SIGINT, resume, diff)"
ckd=$(mktemp -d)
sweepargs="-mode machines -reps 20 -tasks 6000 -seed 5 -workers 1"
/tmp/gridtrust-ci-sweep $sweepargs > "$ckd/expected.txt"
# Interrupt a checkpointed run partway; completed cells are journalled.
/tmp/gridtrust-ci-sweep $sweepargs -checkpoint "$ckd/ck" > /dev/null 2>&1 &
pid=$!
sleep 1
kill -INT "$pid" 2> /dev/null || true
wait "$pid" || true
# The resumed run must emit output byte-identical to the uninterrupted one.
/tmp/gridtrust-ci-sweep $sweepargs -checkpoint "$ckd/ck" > "$ckd/resumed.txt"
cmp "$ckd/expected.txt" "$ckd/resumed.txt"
rm -rf "$ckd"
rm -f /tmp/gridtrust-ci-sweep

echo "ci: ok"
