#!/usr/bin/env sh
# Tier-1 verify flow.  Beyond the seed contract (build + test), it vets
# the whole module and race-tests the packages with real concurrency or
# shared scratch: internal/sim's replication worker pool and
# internal/sched's pooled kernel state.
set -eu

cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test ./..."
go test ./...

echo "==> go test -race ./internal/sched/... ./internal/sim/..."
go test -race ./internal/sched/... ./internal/sim/...

echo "ci: ok"
