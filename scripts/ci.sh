#!/usr/bin/env sh
# Tier-1 verify flow.  Beyond the seed contract (build + test), it vets
# the whole module, race-tests the packages with real concurrency or
# shared scratch (the experiment engine's global pool, internal/sim's
# cell runners, internal/sched's pooled kernel state, the WAL's group
# commit, the daemon's journal), runs the seeded chaos soak (wire
# faults, a partition, a mid-storm crash-restart; books must balance),
# fuzzes every fuzz target briefly,
# smoke-runs every sweep mode through the engine, smoke-runs the
# journalled daemon demo, and proves checkpoint-resume: a SIGINT'd sweep
# resumed against its checkpoint directory prints byte-identical output.
# The overload+drain stage runs a journalled daemon with admission limits,
# drives load through gridctl, SIGTERMs it, and requires a clean exit plus
# byte-identical stats from the replayed daemon.  The gridload stage
# SIGKILLs a journalled daemon mid-load and requires the driver's client
# totals to reconcile exactly with the replayed daemon's metrics.
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: needs formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test ./..."
go test ./...

echo "==> go test -race (concurrent packages)"
go test -race ./internal/exp/... ./internal/fault/... ./internal/sched/... ./internal/sim/... ./internal/trust/... ./internal/wal/... ./internal/rmswire/... ./internal/metrics/... ./internal/load/... ./internal/trustwire/... ./internal/fleet/... ./internal/chaos/...

echo "==> chaos soak smoke (seeded fault schedule, race detector, bounded)"
# The soak runs a 3-shard journaled fleet under a scripted schedule of
# wire faults, a partition, and a SIGKILL-equivalent crash-restart; its
# seed is fixed in the test, so a failure reproduces exactly.
go test -race -run '^TestChaosSoak$' -timeout 120s ./internal/fleet/

echo "==> fuzz smoke (every fuzz target, 5s each)"
for spec in \
    "./internal/wal FuzzWALRecover" \
    "./internal/wal FuzzWALRecoverSnapshot" \
    "./internal/sched FuzzKernelEquivalence" \
    "./internal/des FuzzQueueEquivalence" \
    "./internal/trust FuzzEngineEquivalence" \
    "./internal/trust FuzzModelEquivalence" \
    "./internal/grid FuzzParseLevel" \
    "./internal/grid FuzzETSWith" \
    "./internal/grid FuzzLevelFromScore" \
    "./internal/trustwire FuzzReadFrame" \
    "./internal/trustwire FuzzApplyEntries" \
    "./internal/trustwire FuzzServerRespond" \
    "./internal/chaos FuzzTornTailRecovery" \
    "./internal/chaos FuzzWireDeliveredPrefix"; do
    set -- $spec
    echo "    fuzz $1 $2"
    go test "$1" -run '^$' -fuzz "^$2\$" -fuzztime 5s > /dev/null
done

echo "==> sweep smoke (every mode, tiny grid)"
go build -o /tmp/gridtrust-ci-sweep ./cmd/sweep
/tmp/gridtrust-ci-sweep -list > /dev/null
for mode in heuristics tcweight heterogeneity batch machines etsrule rate evolving deadline staging fault trustzoo; do
    echo "    sweep -mode $mode"
    /tmp/gridtrust-ci-sweep -mode "$mode" -reps 2 -tasks 20 -seed 1 > /dev/null
done
/tmp/gridtrust-ci-sweep -mode machines -reps 2 -tasks 20 -seed 1 -format json > /dev/null

echo "==> DES kernel byte-identity smoke (fast vs reference sweep output)"
kd=$(mktemp -d)
for mode in heuristics fault; do
    /tmp/gridtrust-ci-sweep -mode "$mode" -reps 2 -tasks 20 -seed 1 -des fast > "$kd/$mode-fast.txt"
    /tmp/gridtrust-ci-sweep -mode "$mode" -reps 2 -tasks 20 -seed 1 -des reference > "$kd/$mode-ref.txt"
    cmp "$kd/$mode-fast.txt" "$kd/$mode-ref.txt"
done
# Intra-replication sharding must not change a byte either.
/tmp/gridtrust-ci-sweep -mode heuristics -reps 2 -tasks 20 -seed 1 -des fast -intra 4 > "$kd/heuristics-intra.txt"
cmp "$kd/heuristics-fast.txt" "$kd/heuristics-intra.txt"
# The default trust model is the paper engine: selecting it explicitly
# must not change a byte of any sweep output.
for mode in heuristics fault; do
    /tmp/gridtrust-ci-sweep -mode "$mode" -reps 2 -tasks 20 -seed 1 -trust-model paper > "$kd/$mode-model.txt"
    cmp "$kd/$mode-fast.txt" "$kd/$mode-model.txt"
done
# Rival models are bit-deterministic under any worker/shard count.
/tmp/gridtrust-ci-sweep -mode fault -reps 2 -tasks 20 -seed 1 -trust-model purge -workers 1 > "$kd/fault-purge-w1.txt"
/tmp/gridtrust-ci-sweep -mode fault -reps 2 -tasks 20 -seed 1 -trust-model purge -workers 4 -intra 4 > "$kd/fault-purge-w4.txt"
cmp "$kd/fault-purge-w1.txt" "$kd/fault-purge-w4.txt"
rm -rf "$kd"

echo "==> gridtrustd demo smoke (journalled)"
go build -o /tmp/gridtrust-ci-daemon ./cmd/gridtrustd
go build -o /tmp/gridtrust-ci-gridctl ./cmd/gridctl
dd=$(mktemp -d)
/tmp/gridtrust-ci-daemon -addr 127.0.0.1:0 -data "$dd" -demo | grep -q "demo: placed=5"
/tmp/gridtrust-ci-gridctl wal-info -data "$dd" | grep -q "live records"
rm -rf "$dd"

echo "==> gridtrustd overload + drain smoke (limits on, SIGTERM, replay must match)"
dd=$(mktemp -d)
/tmp/gridtrust-ci-daemon -addr 127.0.0.1:0 -data "$dd" \
    -max-conns 8 -max-inflight 2 > "$dd/log" 2>&1 &
dpid=$!
addr=""
i=0
while [ -z "$addr" ] && [ "$i" -lt 100 ]; do
    sleep 0.1
    addr=$(sed -n 's/^gridtrustd listening on //p' "$dd/log")
    i=$((i + 1))
done
test -n "$addr"
/tmp/gridtrust-ci-gridctl -addr "$addr" health | grep -q "in-flight:"
# Discover the machine count by growing the EEC vector until the daemon
# accepts a submit (the topology is seed-drawn, so it is not known here).
eec="100"
n=1
while [ "$n" -le 64 ]; do
    if /tmp/gridtrust-ci-gridctl -addr "$addr" submit -client 0 \
        -activities 0 -rtl F -eec "$eec" > /dev/null 2>&1; then
        break
    fi
    n=$((n + 1))
    eec="$eec,100"
done
test "$n" -le 64
/tmp/gridtrust-ci-gridctl -addr "$addr" report -placement 1 -outcome 5 > /dev/null
reports=1
i=2
while [ "$i" -le 9 ]; do
    out=$(/tmp/gridtrust-ci-gridctl -addr "$addr" submit -client 0 \
        -activities 0 -rtl F -eec "$eec" -now "$i")
    pl=$(printf '%s\n' "$out" | sed -n 's/^placement \([0-9]*\):.*/\1/p')
    /tmp/gridtrust-ci-gridctl -addr "$addr" report -placement "$pl" \
        -outcome 5 -now "$i" > /dev/null
    reports=$((reports + 1))
    i=$((i + 1))
done
# Settle the monitoring agents so the pre-drain stats view is final.
i=0
while [ "$i" -lt 100 ]; do
    /tmp/gridtrust-ci-gridctl -addr "$addr" stats \
        | grep -q "agents processed:  $reports (" && break
    i=$((i + 1))
    sleep 0.1
done
/tmp/gridtrust-ci-gridctl -addr "$addr" stats > "$dd/stats-before.txt"
kill -TERM "$dpid"
wait "$dpid" # graceful drain must exit 0
grep -q "final checkpoint" "$dd/log"
grep -q "drained; exiting" "$dd/log"
# The replayed daemon must serve byte-identical stats.
/tmp/gridtrust-ci-daemon -addr 127.0.0.1:0 -data "$dd" \
    -max-conns 8 -max-inflight 2 > "$dd/log2" 2>&1 &
dpid=$!
addr=""
i=0
while [ -z "$addr" ] && [ "$i" -lt 100 ]; do
    sleep 0.1
    addr=$(sed -n 's/^gridtrustd listening on //p' "$dd/log2")
    i=$((i + 1))
done
test -n "$addr"
/tmp/gridtrust-ci-gridctl -addr "$addr" stats > "$dd/stats-after.txt"
cmp "$dd/stats-before.txt" "$dd/stats-after.txt"
# Drain over the wire: the daemon must exit 0 without a signal.
/tmp/gridtrust-ci-gridctl -addr "$addr" drain > /dev/null
wait "$dpid"
grep -q "draining: requested over the wire" "$dd/log2"
rm -rf "$dd"

echo "==> gridload smoke (limits on, mid-run SIGKILL+restart, books must balance)"
go build -o /tmp/gridtrust-ci-gridload ./cmd/gridload
ld=$(mktemp -d)
mkdir "$ld/data"
/tmp/gridtrust-ci-daemon -addr 127.0.0.1:0 -data "$ld/data" \
    -max-inflight 2 > "$ld/log" 2>&1 &
dpid=$!
addr=""
i=0
while [ -z "$addr" ] && [ "$i" -lt 100 ]; do
    sleep 0.1
    addr=$(sed -n 's/^gridtrustd listening on //p' "$ld/log")
    i=$((i + 1))
done
test -n "$addr"
# gridload exits 3 if its client totals do not reconcile with the
# daemon's {"op":"metrics"} counters, so the smoke is the exit code;
# the SIGKILL below lands mid-run and WAL replay must restore the
# durable anchors (placed, idem entries, open placements) exactly.
/tmp/gridtrust-ci-gridload -addr "$addr" -clients 4 -duration 2s \
    -seed 41 -max-attempts 80 -op-timeout 2s -format json > "$ld/run.json" &
lpid=$!
sleep 1
kill -KILL "$dpid"
wait "$dpid" 2> /dev/null || true
/tmp/gridtrust-ci-daemon -addr "$addr" -data "$ld/data" \
    -max-inflight 2 > "$ld/log2" 2>&1 &
dpid=$!
wait "$lpid"
grep -q '"daemon_restarted": true' "$ld/run.json"
grep -q '"unresolved": 0' "$ld/run.json"
# The metrics op and its CLI surface answer on the replayed daemon.
/tmp/gridtrust-ci-gridctl -addr "$addr" metrics | grep -q "placed"
/tmp/gridtrust-ci-gridctl -addr "$addr" metrics -format json \
    | grep -q '"start_unix_nanos"'
# Clean wire-drain exit closes the smoke.
/tmp/gridtrust-ci-gridctl -addr "$addr" drain > /dev/null
wait "$dpid"
grep -q "drained; exiting" "$ld/log2"
rm -rf "$ld"

echo "==> fleet single-shard byte-identity smoke (demo stdout + WAL must match non-fleet)"
fd=$(mktemp -d)
mkdir "$fd/plain" "$fd/fleet"
printf '{"shards":[{"name":"s0","addr":"127.0.0.1:7469"}]}\n' > "$fd/solo.json"
# Relative -data paths so the WAL recovery line prints the same path in
# both runs; the runs are sequential so the fixed port never conflicts.
(cd "$fd/plain" && /tmp/gridtrust-ci-daemon -addr 127.0.0.1:7469 -data data -demo) > "$fd/plain.out"
(cd "$fd/fleet" && /tmp/gridtrust-ci-daemon -fleet "$fd/solo.json" -shard s0 -data data -demo) \
    > "$fd/fleet.out" 2> "$fd/fleet.err"
# Identical stdout (fleet chatter is stderr-only) and identical on-disk
# state: shard 0's placement-ID namespace base is 0, so a single-shard
# fleet journals byte-for-byte what a plain daemon journals.
cmp "$fd/plain.out" "$fd/fleet.out"
diff -r "$fd/plain/data" "$fd/fleet/data"
grep -q "fleet: shard s0" "$fd/fleet.err"
rm -rf "$fd"

echo "==> fleet smoke (3 shards, mid-run SIGKILL+restart, fleet-wide books + gossip convergence)"
fd=$(mktemp -d)
mkdir "$fd/d0" "$fd/d1" "$fd/d2"
printf '%s\n' '{"shards":[' \
    ' {"name":"s0","addr":"127.0.0.1:7471","trust_addr":"127.0.0.1:7474"},' \
    ' {"name":"s1","addr":"127.0.0.1:7472","trust_addr":"127.0.0.1:7475"},' \
    ' {"name":"s2","addr":"127.0.0.1:7473","trust_addr":"127.0.0.1:7476"}],' \
    ' "gossip_interval_ms":50,"staleness_bound_ms":5000}' > "$fd/fleet.json"
for i in 0 1 2; do
    /tmp/gridtrust-ci-daemon -fleet "$fd/fleet.json" -shard "s$i" -data "$fd/d$i" \
        > "$fd/log$i" 2>&1 &
    eval "dpid$i=\$!"
done
for i in 0 1 2; do
    j=0
    while ! grep -q "^gridtrustd listening on " "$fd/log$i" && [ "$j" -lt 100 ]; do
        sleep 0.1
        j=$((j + 1))
    done
    grep -q "^gridtrustd listening on " "$fd/log$i"
done
/tmp/gridtrust-ci-gridctl fleet health -config "$fd/fleet.json" | grep -q "s2"
# gridload drives all three shards (workers pinned round-robin) and
# exits 3 unless the durable anchors balance when summed fleet-wide —
# including across the SIGKILL+restart of shard s1 below.
/tmp/gridtrust-ci-gridload -fleet "$fd/fleet.json" -clients 6 -duration 3s \
    -seed 43 -max-attempts 200 -op-timeout 2s -settle-timeout 30s \
    -format json > "$fd/run.json" &
lpid=$!
sleep 1
kill -KILL "$dpid1"
wait "$dpid1" 2> /dev/null || true
sleep 0.3
/tmp/gridtrust-ci-daemon -fleet "$fd/fleet.json" -shard s1 -data "$fd/d1" \
    > "$fd/log1b" 2>&1 &
dpid1=$!
wait "$lpid" # exit 0 = fleet-wide exactly-once reconciliation held
grep -q '"daemon_restarted": true' "$fd/run.json"
grep -q '"unresolved": 0' "$fd/run.json"
# Trust gossip must reconverge after the churn: every shard's claim set
# reaches every peer's current table version within the staleness bound.
/tmp/gridtrust-ci-gridctl fleet gossip -config "$fd/fleet.json" -wait 10s | grep -q "converged"
/tmp/gridtrust-ci-gridctl fleet ring -config "$fd/fleet.json" | grep -q "share: "
/tmp/gridtrust-ci-gridctl fleet metrics -config "$fd/fleet.json" | grep -q "fleet total:"
/tmp/gridtrust-ci-gridctl fleet drain -config "$fd/fleet.json" > /dev/null
wait "$dpid0"
wait "$dpid1"
wait "$dpid2"
grep -q "drained; exiting" "$fd/log0"
grep -q "drained; exiting" "$fd/log1b"
grep -q "drained; exiting" "$fd/log2"
rm -rf "$fd"
rm -f /tmp/gridtrust-ci-daemon /tmp/gridtrust-ci-gridctl /tmp/gridtrust-ci-gridload

echo "==> sweep checkpoint-resume smoke (SIGINT, resume, diff)"
ckd=$(mktemp -d)
sweepargs="-mode machines -reps 20 -tasks 6000 -seed 5 -workers 1"
/tmp/gridtrust-ci-sweep $sweepargs > "$ckd/expected.txt"
# Interrupt a checkpointed run partway; completed cells are journalled.
/tmp/gridtrust-ci-sweep $sweepargs -checkpoint "$ckd/ck" > /dev/null 2>&1 &
pid=$!
sleep 1
kill -INT "$pid" 2> /dev/null || true
wait "$pid" || true
# The resumed run must emit output byte-identical to the uninterrupted one.
/tmp/gridtrust-ci-sweep $sweepargs -checkpoint "$ckd/ck" > "$ckd/resumed.txt"
cmp "$ckd/expected.txt" "$ckd/resumed.txt"
rm -rf "$ckd"
rm -f /tmp/gridtrust-ci-sweep

echo "ci: ok"
