#!/usr/bin/env sh
# Tier-1 verify flow.  Beyond the seed contract (build + test), it vets
# the whole module, race-tests the packages with real concurrency or
# shared scratch (the experiment engine's global pool, internal/sim's
# cell runners, internal/sched's pooled kernel state), and smoke-runs
# every sweep mode through the engine.
set -eu

cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test ./..."
go test ./...

echo "==> go test -race ./internal/exp/... ./internal/fault/... ./internal/sched/... ./internal/sim/..."
go test -race ./internal/exp/... ./internal/fault/... ./internal/sched/... ./internal/sim/...

echo "==> sweep smoke (every mode, tiny grid)"
go build -o /tmp/gridtrust-ci-sweep ./cmd/sweep
/tmp/gridtrust-ci-sweep -list > /dev/null
for mode in heuristics tcweight heterogeneity batch machines etsrule rate evolving deadline staging fault; do
    echo "    sweep -mode $mode"
    /tmp/gridtrust-ci-sweep -mode "$mode" -reps 2 -tasks 20 -seed 1 > /dev/null
done
/tmp/gridtrust-ci-sweep -mode machines -reps 2 -tasks 20 -seed 1 -format json > /dev/null
rm -f /tmp/gridtrust-ci-sweep

echo "ci: ok"
