#!/usr/bin/env sh
# Regenerates BENCH_serve.json: the serving benchmark measured by
# gridload against a journalled gridtrustd.
#
# Four runs against one daemon instance, each under a fresh idempotency
# namespace so durable keys never collide:
#   closed loop at 2 and 8 clients  -> sustained capacity (RPS per core)
#   open loop (Poisson) at a low and a high arrival rate -> latency
#     percentiles with coordinated-omission correction
#
# Every run reconciles its client totals against the daemon's
# {"op":"metrics"} counters; gridload exits 3 on any imbalance, which
# aborts this script.  The daemon keeps its WAL attached throughout, so
# the numbers include the group-commit fsync path, not an in-memory toy.
set -eu

cd "$(dirname "$0")/.."

DUR=${DUR:-5s}
OPEN_LOW=${OPEN_LOW:-150}
OPEN_HIGH=${OPEN_HIGH:-400}

go build -o /tmp/gridtrust-bench-daemon ./cmd/gridtrustd
go build -o /tmp/gridtrust-bench-gridload ./cmd/gridload

bd=$(mktemp -d)
trap 'kill "$dpid" 2> /dev/null || true; rm -rf "$bd"; rm -f /tmp/gridtrust-bench-daemon /tmp/gridtrust-bench-gridload' EXIT

mkdir "$bd/data"
/tmp/gridtrust-bench-daemon -addr 127.0.0.1:0 -data "$bd/data" > "$bd/log" 2>&1 &
dpid=$!
addr=""
i=0
while [ -z "$addr" ] && [ "$i" -lt 100 ]; do
    sleep 0.1
    addr=$(sed -n 's/^gridtrustd listening on //p' "$bd/log")
    i=$((i + 1))
done
test -n "$addr"

run() { # run <outfile> <key-prefix> <gridload args...>
    out=$1
    prefix=$2
    shift 2
    echo "bench-serve: gridload $*" >&2
    /tmp/gridtrust-bench-gridload -addr "$addr" -duration "$DUR" \
        -key-prefix "$prefix" -format json "$@" > "$bd/$out"
}

run closed-2.json bs-c2 -clients 2 -seed 101
run closed-8.json bs-c8 -clients 8 -seed 102
run open-low.json bs-ol -mode open -arrival poisson -rps "$OPEN_LOW" -clients 4 -seed 103
run open-high.json bs-oh -mode open -arrival poisson -rps "$OPEN_HIGH" -clients 8 -seed 104

jq -n \
    --arg go "$(go version | awk '{print $3}')" \
    --arg dur "$DUR" \
    --argjson cpus "$(nproc)" \
    --slurpfile c2 "$bd/closed-2.json" \
    --slurpfile c8 "$bd/closed-8.json" \
    --slurpfile ol "$bd/open-low.json" \
    --slurpfile oh "$bd/open-high.json" \
    '{
      benchmark: "gridload vs journalled gridtrustd (WAL group commit on)",
      go: $go, cpus: $cpus, duration_per_run: $dur,
      note: "client-side measurements; every run reconciled exactly against daemon metrics (gridload exits nonzero otherwise); open-loop latency is coordinated-omission corrected (charged from scheduled arrival)",
      headline: {
        closed_loop_rps_per_core: ($c8[0].per_core_rps),
        closed_loop_submit_p99_ms: ($c8[0].submit_latency.p99_ms),
        open_loop_submit_p99_ms: ($ol[0].submit_latency.p99_ms)
      },
      runs: {
        closed_2_clients: $c2[0],
        closed_8_clients: $c8[0],
        open_poisson_low: $ol[0],
        open_poisson_high: $oh[0]
      }
    }' > BENCH_serve.json

echo "bench-serve: wrote BENCH_serve.json"
jq '.headline' BENCH_serve.json
