// Package gridtrust reproduces "Integrating Trust into Grid Resource
// Management Systems" (Azzedin & Maheswaran, ICPP 2002) as a library: a
// trust model for Grid systems, trust-aware scheduling heuristics (MCT,
// Min-min, Sufferage plus the baseline family from Maheswaran et al.), a
// discrete-event simulator, and a benchmark harness that regenerates every
// table of the paper's evaluation.
//
// This root package is the experiment facade: it names each paper table,
// runs the corresponding experiment and renders paper-style rows.  The
// building blocks live in internal packages (see DESIGN.md for the map):
//
//	internal/grid     trust levels, domains, trust-level table, ETS (Table 1)
//	internal/trust    Γ = α·Θ + β·Ω trust engine, decay, agents
//	internal/sched    the mapping heuristics and cost policies
//	internal/workload EEC heterogeneity matrices and request streams
//	internal/des      the discrete-event kernel
//	internal/sim      scenarios, paired runs, parallel replication
//	internal/secover  scp/rcp and sandboxing overhead models (Tables 2-3)
//	internal/core     the TRMS of Figure 1 (agents + table + scheduler)
package gridtrust

import (
	"context"
	"fmt"

	"gridtrust/internal/exp"
	"gridtrust/internal/grid"
	"gridtrust/internal/report"
	"gridtrust/internal/rng"
	"gridtrust/internal/secover"
	"gridtrust/internal/sim"
	"gridtrust/internal/workload"
)

// TableID names a table of the paper.
type TableID int

// The paper's tables.  Table 1 is deterministic (ETS values); Tables 2-3
// come from the calibrated transfer model; Tables 4-9 are simulations.
const (
	Table1ETS TableID = iota + 1
	Table2Transfer100
	Table3Transfer1000
	Table4MCTInconsistent
	Table5MCTConsistent
	Table6MinMinInconsistent
	Table7MinMinConsistent
	Table8SufferageInconsistent
	Table9SufferageConsistent
)

// SimTables lists the six simulation tables (4-9).
func SimTables() []TableID {
	return []TableID{
		Table4MCTInconsistent, Table5MCTConsistent,
		Table6MinMinInconsistent, Table7MinMinConsistent,
		Table8SufferageInconsistent, Table9SufferageConsistent,
	}
}

// simTableSpec returns the heuristic and consistency class behind a
// simulation table.
func simTableSpec(id TableID) (heuristic string, cons workload.Consistency, err error) {
	switch id {
	case Table4MCTInconsistent:
		return "mct", workload.Inconsistent, nil
	case Table5MCTConsistent:
		return "mct", workload.Consistent, nil
	case Table6MinMinInconsistent:
		return "minmin", workload.Inconsistent, nil
	case Table7MinMinConsistent:
		return "minmin", workload.Consistent, nil
	case Table8SufferageInconsistent:
		return "sufferage", workload.Inconsistent, nil
	case Table9SufferageConsistent:
		return "sufferage", workload.Consistent, nil
	default:
		return "", 0, fmt.Errorf("gridtrust: table %d is not a simulation table", int(id))
	}
}

// Title returns the paper-style caption of a table.
func (id TableID) Title() string {
	switch id {
	case Table1ETS:
		return "Table 1. Expected trust supplement values."
	case Table2Transfer100:
		return "Table 2. Secure versus regular transmission for a 100 Mbps network."
	case Table3Transfer1000:
		return "Table 3. Secure versus regular transmission for a 1000 Mbps network."
	case Table4MCTInconsistent:
		return "Table 4. Average completion time, inconsistent LoLo, MCT heuristic."
	case Table5MCTConsistent:
		return "Table 5. Average completion time, consistent LoLo, MCT heuristic."
	case Table6MinMinInconsistent:
		return "Table 6. Average completion time, inconsistent LoLo, Min-min heuristic."
	case Table7MinMinConsistent:
		return "Table 7. Average completion time, consistent LoLo, Min-min heuristic."
	case Table8SufferageInconsistent:
		return "Table 8. Average completion time, inconsistent LoLo, Sufferage heuristic."
	case Table9SufferageConsistent:
		return "Table 9. Average completion time, consistent LoLo, Sufferage heuristic."
	default:
		return fmt.Sprintf("Table %d", int(id))
	}
}

// SimOptions parameterise a simulation-table reproduction.
type SimOptions struct {
	// Seed feeds the replication streams; fixed seed = fixed output.
	Seed uint64
	// Reps is the number of paired replications per cell (default 40).
	Reps int
	// Workers bounds the worker pool (default GOMAXPROCS).
	Workers int
	// TaskCounts are the "# of tasks" rows (default 50 and 100).
	TaskCounts []int
	// TrustModel selects the trust policy driving the aware runs.  Empty
	// (or "paper") keeps the static table-driven engine of the paper;
	// any other registered model learns trust online during each run.
	TrustModel string
	// OnCell, when set, receives one progress event per completed
	// (table, task count) cell.
	OnCell func(exp.Progress)
}

// withDefaults fills unset options.
func (o SimOptions) withDefaults() SimOptions {
	if o.Reps == 0 {
		o.Reps = 40
	}
	if len(o.TaskCounts) == 0 {
		o.TaskCounts = []int{50, 100}
	}
	return o
}

// SimCell is one (task count) block of a simulation table: the unaware and
// aware measurements and the improvement, in the paper's layout.
type SimCell struct {
	Tasks int

	UnawareUtilization float64
	UnawareCompletion  float64
	AwareUtilization   float64
	AwareCompletion    float64

	// ImprovementPct is (unaware − aware)/unaware × 100 on completion.
	ImprovementPct float64
	// CompletionCI95 is the ± half-width on the paired completion
	// difference; Significant is true when it excludes zero.
	CompletionCI95 float64
	Significant    bool
}

// SimTableResult is a reproduced simulation table.
type SimTableResult struct {
	ID        TableID
	Heuristic string
	Cells     []SimCell
}

// RunSimTable reproduces one of Tables 4-9.
func RunSimTable(id TableID, opts SimOptions) (*SimTableResult, error) {
	results, err := RunSimTables(context.Background(), []TableID{id}, opts)
	if err != nil {
		return nil, err
	}
	return results[0], nil
}

// RunSimTables reproduces several of Tables 4-9 at once: every
// (table, task count) cell is scheduled on one shared worker pool via the
// experiment engine, so small tables no longer serialise behind each
// other.  Each table's numbers are bit-identical to a standalone
// RunSimTable with the same options.
func RunSimTables(ctx context.Context, ids []TableID, opts SimOptions) ([]*SimTableResult, error) {
	opts = opts.withDefaults()
	results := make([]*SimTableResult, len(ids))
	var cells []sim.CompareCell
	// fold[i] fills table i's cell from the comparison the grid hands
	// back for the matching CompareCell.
	var fold []func(*sim.Comparison)
	for i, id := range ids {
		heuristic, cons, err := simTableSpec(id)
		if err != nil {
			return nil, err
		}
		results[i] = &SimTableResult{ID: id, Heuristic: heuristic}
		res := results[i]
		for _, tasks := range opts.TaskCounts {
			tasks := tasks
			sc := sim.PaperScenario(heuristic, tasks, cons)
			sc.TrustModel = opts.TrustModel
			cells = append(cells, sim.CompareCell{
				Name:     fmt.Sprintf("table%d/%d-tasks", int(id), tasks),
				Scenario: sc,
			})
			fold = append(fold, func(cmp *sim.Comparison) {
				res.Cells = append(res.Cells, SimCell{
					Tasks:              tasks,
					UnawareUtilization: cmp.Unaware.Utilization.Mean(),
					UnawareCompletion:  cmp.Unaware.AvgCompletion.Mean(),
					AwareUtilization:   cmp.Aware.Utilization.Mean(),
					AwareCompletion:    cmp.Aware.AvgCompletion.Mean(),
					ImprovementPct:     cmp.ImprovementPercent(),
					CompletionCI95:     cmp.CompletionPairs.DiffCI95(),
					Significant:        cmp.CompletionPairs.Significant(),
				})
			})
		}
	}
	cmps, err := sim.CompareGrid(ctx, cells, sim.GridOptions{
		Seed: opts.Seed, Reps: opts.Reps, Workers: opts.Workers, OnCell: opts.OnCell,
	})
	if err != nil {
		return nil, fmt.Errorf("gridtrust: %w", err)
	}
	// Comparisons arrive in cell order, which matches fold order, so each
	// table's rows land in TaskCounts order.
	for i, cmp := range cmps {
		fold[i](cmp)
	}
	return results, nil
}

// Render lays the result out like the paper's tables.
func (r *SimTableResult) Render() *report.Table {
	tb := report.NewTable(r.ID.Title(),
		"# of tasks", "Using trust", "Machine utilization", "Ave. completion time (sec)", "Improvement")
	for _, c := range r.Cells {
		tb.AddRow(
			fmt.Sprintf("%d", c.Tasks), "No",
			report.Fraction(c.UnawareUtilization, 2),
			report.Seconds(c.UnawareCompletion),
			report.Percent(c.ImprovementPct, 2),
		)
		tb.AddRow(
			"", "Yes",
			report.Fraction(c.AwareUtilization, 2),
			report.Seconds(c.AwareCompletion),
			"",
		)
	}
	return tb
}

// ETSRows renders Table 1 exactly as printed in the paper, with symbolic
// differences resolved to their numeric values.
func ETSRows() *report.Table {
	tb := report.NewTable(Table1ETS.Title(),
		"requested TL", "A", "B", "C", "D", "E")
	ets := grid.ETSTable()
	for r := 0; r < 6; r++ {
		row := []string{grid.TrustLevel(r + 1).String()}
		for o := 0; o < 5; o++ {
			row = append(row, fmt.Sprintf("%d", ets[r][o]))
		}
		tb.AddRow(row...)
	}
	return tb
}

// TransferTable reproduces Table 2 (mbps=100) or Table 3 (mbps=1000).
func TransferTable(mbps float64) (*report.Table, error) {
	link, err := secover.LinkFor(mbps)
	if err != nil {
		return nil, err
	}
	rows, err := link.Table(secover.PaperSizes)
	if err != nil {
		return nil, err
	}
	id := Table2Transfer100
	if mbps == 1000 {
		id = Table3Transfer1000
	}
	tb := report.NewTable(id.Title(),
		"File size/MB", "Using rcp/(sec)", "Using scp/(sec)", "Overhead")
	for _, r := range rows {
		tb.AddRow(
			fmt.Sprintf("%g", r.SizeMB),
			fmt.Sprintf("%.2f", r.RcpSeconds),
			fmt.Sprintf("%.2f", r.ScpSeconds),
			report.Percent(r.OverheadPercent, 2),
		)
	}
	return tb, nil
}

// SandboxTable renders the Section 5.1 sandboxing overheads.
func SandboxTable() *report.Table {
	tb := report.NewTable("Section 5.1. Sandboxing runtime overheads (MiSFIT / SASI x86SFI).",
		"Benchmark", "MiSFIT", "SASI x86SFI")
	for _, r := range secover.SandboxTable() {
		tb.AddRow(r.Benchmark.String(),
			report.Percent(r.MiSFITPct, 0),
			report.Percent(r.SASIPct, 0))
	}
	return tb
}

// EvolvingOptions parameterises the Section 7 evolving-trust experiment
// through the facade.
type EvolvingOptions struct {
	Seed     uint64
	Requests int
	// UnreliableIncidentProb overrides the misbehaving domain's incident
	// rate (default 0.5).
	UnreliableIncidentProb float64
}

// RunEvolvingExperiment runs the evolving-trust loop (schedule → observe →
// score → update table → placements shift) and renders a paper-style
// summary table alongside the raw result.
func RunEvolvingExperiment(opts EvolvingOptions) (*sim.EvolvingResult, *report.Table, error) {
	res, err := sim.RunEvolving(sim.EvolvingConfig{
		Requests:               opts.Requests,
		UnreliableIncidentProb: opts.UnreliableIncidentProb,
	}, rng.New(opts.Seed))
	if err != nil {
		return nil, nil, err
	}
	tb := report.NewTable("Evolving trust: placements vs observed behaviour",
		"phase", "share on misbehaving RD", "mean trust cost")
	tb.AddRow("early", report.Fraction(res.EarlyUnreliableShare, 1), fmt.Sprintf("%.2f", res.MeanTCEarly))
	tb.AddRow("late", report.Fraction(res.LateUnreliableShare, 1), fmt.Sprintf("%.2f", res.MeanTCLate))
	return res, tb, nil
}

// RunStagingExperiment runs the data-staging experiment (rcp when trusted
// vs blanket scp) across reps replications and renders the summary.
func RunStagingExperiment(seed uint64, reps int, maxInputMB float64) (*report.Table, error) {
	imp, plain, err := sim.StagingSeries(sim.StagingConfig{MaxInputMB: maxInputMB}, seed, reps)
	if err != nil {
		return nil, err
	}
	tb := report.NewTable("Data staging: trusted rcp vs blanket scp",
		"metric", "value")
	tb.AddRow("makespan improvement", report.Percent(imp.Mean(), 2))
	tb.AddRow("improvement CI95", report.Percent(imp.CI95(), 2))
	tb.AddRow("plain-transfer share", report.Fraction(plain.Mean(), 1))
	return tb, nil
}
